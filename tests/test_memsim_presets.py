"""Tests for the alternative memory-technology presets."""

from __future__ import annotations

import pytest

from repro.core.analysis import ProfilingAnalyzer
from repro.memsim.presets import (
    ALL_PRESETS,
    DDR5_CXL,
    DRAM_NVME,
    DRAM_PMEM,
    HBM_DRAM,
)
from repro.memsim.tiers import DEFAULT_MEMORY_SYSTEM


class TestPresets:
    def test_default_is_paper_platform(self):
        assert DRAM_PMEM.fast is DEFAULT_MEMORY_SYSTEM.fast
        assert DRAM_PMEM.cost_ratio == pytest.approx(2.5)

    def test_all_presets_valid_systems(self):
        for name, system in ALL_PRESETS.items():
            assert system.fast.load_latency_s <= system.slow.load_latency_s
            assert system.cost_ratio >= 1.0
            assert 0 < system.optimal_normalized_cost <= 1.0

    def test_cxl_is_mild_tiering(self):
        """CXL DDR4 is much closer to DRAM than Optane is."""
        assert DDR5_CXL.latency_ratio() < DRAM_PMEM.latency_ratio()

    def test_hbm_pairing_most_expensive_fast_tier(self):
        assert HBM_DRAM.fast.cost_per_mb == max(
            s.fast.cost_per_mb for s in ALL_PRESETS.values()
        )
        assert HBM_DRAM.cost_ratio > DRAM_PMEM.cost_ratio

    def test_nvme_is_the_slowest_tier(self):
        assert DRAM_NVME.latency_ratio() > 10


class TestCostModelAcrossTechnologies:
    def test_optimal_cost_tracks_ratio(self):
        """Section IV-B: the formula adapts to any technology pair."""
        for system in ALL_PRESETS.values():
            assert system.optimal_normalized_cost == pytest.approx(
                1.0 / system.cost_ratio
            )

    def test_analysis_runs_on_every_preset(self, tiny_function):
        """The whole pipeline is technology-agnostic."""
        from test_core_analysis import profiled_pattern

        pattern = profiled_pattern(tiny_function, invocations=6)
        trace = tiny_function.trace(3, 999)
        fractions = {}
        for name, system in ALL_PRESETS.items():
            result = ProfilingAnalyzer(system).analyze(pattern, trace)
            assert system.optimal_normalized_cost <= result.cost <= 1.0 + 1e-9
            fractions[name] = result.slow_fraction
        # A near-free slow tier (CXL) should offload at least as much as
        # the brutal NVMe tier.
        assert fractions["ddr5+cxl"] >= fractions["dram+nvme"]
