"""Tests for the span/tracer layer (:mod:`repro.obs.spans`)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.obs import Span, SpanStatus, Tracer


class TestTracerTime:
    def test_cursor_starts_at_zero(self):
        assert Tracer().now() == 0.0

    def test_record_advances_cursor(self):
        tracer = Tracer()
        tracer.record("a", 1.5)
        tracer.record("b", 0.5)
        assert tracer.now() == 2.0

    def test_records_lay_out_sequentially(self):
        tracer = Tracer()
        a = tracer.record("a", 1.5)
        b = tracer.record("b", 0.5)
        assert (a.start_s, a.end_s) == (0.0, 1.5)
        assert (b.start_s, b.end_s) == (1.5, 2.0)

    def test_seek_reanchors_even_backward(self):
        tracer = Tracer()
        tracer.record("a", 5.0)
        tracer.seek(2.0)
        span = tracer.record("b", 1.0)
        assert span.start_s == 2.0

    def test_clock_anchors_forward_only(self):
        now = {"t": 3.0}
        tracer = Tracer(clock=lambda: now["t"])
        assert tracer.now() == 3.0
        tracer.record("a", 10.0)  # cursor moves to 13.0
        assert tracer.now() == 13.0  # max(cursor, clock)
        now["t"] = 20.0
        assert tracer.now() == 20.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            Tracer().record("a", -0.1)


class TestNesting:
    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                pass
        assert parent.parent_id is None
        assert child.parent_id == parent.span_id
        assert tracer.children_of(parent) == [child]

    def test_recorded_span_is_child_of_open_span(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            leaf = tracer.record("leaf", 0.25)
        assert leaf.parent_id == parent.span_id
        # The parent closed at the cursor its child advanced.
        assert parent.end_s == leaf.end_s

    def test_ending_non_innermost_span_rejected(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("inner")
        with pytest.raises(ConfigError):
            tracer.end_span(outer)

    def test_exception_marks_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.status is SpanStatus.ERROR

    def test_current_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        span = tracer.start_span("s")
        assert tracer.current is span
        tracer.end_span(span)
        assert tracer.current is None


class TestEvents:
    def test_event_attaches_to_current_span(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            tracer.event("milestone", attrs={"k": 1})
        assert [e.name for e in span.events] == ["milestone"]
        assert span.events[0].attrs == {"k": 1}

    def test_event_without_span_is_orphan(self):
        tracer = Tracer()
        tracer.event("stray", at_s=4.5)
        assert [e.name for e in tracer.orphan_events] == ["stray"]
        assert tracer.orphan_events[0].at_s == 4.5


class TestQueries:
    def test_ids_are_deterministic(self):
        def build() -> list[int]:
            tracer = Tracer()
            tracer.record("a", 1.0)
            with tracer.span("b"):
                tracer.record("c", 1.0)
            return [s.span_id for s in tracer.finished()]

        assert build() == build()

    def test_finished_orders_by_start_then_id(self):
        tracer = Tracer()
        tracer.record("late", 1.0, start_s=5.0)
        tracer.seek(0.0)
        tracer.record("early", 1.0)
        assert [s.name for s in tracer.finished()] == ["early", "late"]

    def test_finished_filters_by_prefix(self):
        tracer = Tracer()
        tracer.record("restore/toss", 1.0)
        tracer.record("execute", 1.0)
        assert [s.name for s in tracer.finished("restore/")] == ["restore/toss"]

    def test_duration_property(self):
        span = Span(1, None, "x", 2.0, 3.5)
        assert span.duration_s == 1.5
