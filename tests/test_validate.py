"""Tests for the calibration health checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions import SUITE, get_function
from repro.memsim.tiers import Tier
from repro.validate import (
    check_function,
    check_suite,
    predicted_full_slow_slowdown,
)
from repro.vm.microvm import MicroVM


class TestCalibration:
    def test_whole_suite_in_band(self):
        results = check_suite()
        failures = [r for r in results if not r.ok]
        assert not failures, "\n".join(
            f"{r.name}: predicted {r.predicted_full_slow:.3f} outside "
            f"[{r.target_low}, {r.target_high}] {r.notes}"
            for r in failures
        )

    def test_prediction_matches_simulation(self):
        """The closed-form prediction agrees with the execution engine."""
        func = get_function("matmul")
        trace = func.trace(3, 0)
        all_slow = np.full(func.n_pages, int(Tier.SLOW), dtype=np.uint8)
        all_fast = np.full(func.n_pages, int(Tier.FAST), dtype=np.uint8)
        t_slow = MicroVM(func.n_pages, placement=all_slow).execute(trace).time_s
        t_fast = MicroVM(func.n_pages, placement=all_fast).execute(trace).time_s
        measured = t_slow / t_fast
        predicted = predicted_full_slow_slowdown(func)
        # Fault costs and rounding keep them within a few percent.
        assert measured == pytest.approx(predicted, rel=0.05)

    def test_pagerank_predicted_worst(self):
        preds = {
            f.name: predicted_full_slow_slowdown(f) for f in SUITE
        }
        assert max(preds, key=preds.get) == "pagerank"

    def test_check_flags_structural_problems(self, tiny_function):
        result = check_function(tiny_function)
        # tiny_function has no target band: structural checks only.
        assert result.ok
