"""N-tier snapshot plumbing: bin spreading, layout, restore, batch gate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import ProfilingAnalyzer
from repro.core.tiering import build_tiered_snapshot, spread_bins_across_tiers
from repro.errors import LayoutError
from repro.memsim.compressed import (
    LZ4_POINT,
    ZSTD_POINT,
    compressed_memory_system,
)
from repro.memsim.tiers import DEFAULT_MEMORY_SYSTEM, Tier
from repro.sim.batchexec import cohort_eligible
from repro.vm.layout import LayoutEntry, MemoryLayout
from repro.vm.microvm import Backing
from repro.vm.restore import tiered_restore
from repro.vm.snapshot import SingleTierSnapshot

from test_core_analysis import profiled_pattern


@pytest.fixture(scope="module")
def analysis():
    from conftest import tiny_function

    function = tiny_function.__wrapped__()
    pattern = profiled_pattern(function)
    return ProfilingAnalyzer().analyze(pattern, function.trace(3, 999))


class TestSpreadBins:
    def test_no_middle_tiers_is_identity(self, analysis):
        spread = spread_bins_across_tiers(analysis, DEFAULT_MEMORY_SYSTEM)
        np.testing.assert_array_equal(spread, analysis.placement)
        assert spread is not analysis.placement  # a copy, not an alias

    def test_middle_tiers_receive_offloaded_bins(self, analysis):
        memory = compressed_memory_system((LZ4_POINT,))
        spread = spread_bins_across_tiers(analysis, memory)
        used = set(np.unique(spread).tolist())
        # Chain ids only; fast pages never move.
        assert used <= {0, 1, 2}
        np.testing.assert_array_equal(
            spread == int(Tier.FAST), analysis.placement == int(Tier.FAST)
        )

    def test_spread_is_deterministic(self, analysis):
        memory = compressed_memory_system((LZ4_POINT, ZSTD_POINT), slow=None)
        a = spread_bins_across_tiers(analysis, memory)
        b = spread_bins_across_tiers(analysis, memory)
        np.testing.assert_array_equal(a, b)


class TestNTierLayout:
    def test_layout_round_trips_middle_tier_ids(self):
        placement = np.zeros(100, dtype=np.uint8)
        placement[10:30] = 2
        placement[50:100] = int(Tier.SLOW)
        layout = MemoryLayout.from_placement(placement)
        np.testing.assert_array_equal(layout.placement(), placement)
        assert layout.pages_by_tier() == {0: 30, 1: 50, 2: 20}

    def test_negative_tier_id_rejected(self):
        with pytest.raises(LayoutError, match="unknown tier id"):
            LayoutEntry(
                tier=-1, file_offset_page=0, guest_start_page=0, n_pages=1
            )

    def test_two_tier_layout_unchanged(self):
        placement = np.zeros(64, dtype=np.uint8)
        placement[32:] = 1
        layout = MemoryLayout.from_placement(placement)
        assert layout.n_mappings == 2
        assert layout.pages_by_tier() == {0: 32, 1: 32}


class TestNTierRestore:
    def _snapshot(self, analysis, memory):
        base = SingleTierSnapshot(
            n_pages=analysis.n_pages,
            page_versions=np.zeros(analysis.n_pages, dtype=np.uint64),
            label="tiny",
        )
        return build_tiered_snapshot(base, analysis, memory=memory)

    def test_middle_tier_pages_backed_by_compressed_pool(self, analysis):
        memory = compressed_memory_system((LZ4_POINT,))
        snapshot = self._snapshot(analysis, memory)
        result = tiered_restore(snapshot, memory=memory)
        placement = result.vm.placement
        middle_mask = placement > int(Tier.SLOW)
        if middle_mask.any():
            assert (
                result.vm.backing[middle_mask]
                == int(Backing.COMPRESSED_POOL)
            ).all()
        # Slow-tier pages keep their DAX mappings.
        slow_mask = placement == int(Tier.SLOW)
        assert not (
            result.vm.backing[slow_mask] == int(Backing.COMPRESSED_POOL)
        ).any()

    def test_two_tier_restore_has_no_compressed_pool(self, analysis):
        snapshot = self._snapshot(analysis, DEFAULT_MEMORY_SYSTEM)
        result = tiered_restore(snapshot, memory=DEFAULT_MEMORY_SYSTEM)
        assert not (
            result.vm.backing == int(Backing.COMPRESSED_POOL)
        ).any()

    def test_ntier_restore_executes(self, analysis):
        memory = compressed_memory_system((LZ4_POINT,))
        snapshot = self._snapshot(analysis, memory)
        result = tiered_restore(snapshot, memory=memory)
        from conftest import make_trace

        n = analysis.n_pages
        trace = make_trace(
            n_pages=n, pages=(0, n // 2, n - 1), counts=(10, 10, 10)
        )
        out = result.vm.execute(trace)
        assert out.counters.total_time_s > 0


class TestBatchGate:
    def test_two_tier_default_is_eligible(self):
        assert cohort_eligible(DEFAULT_MEMORY_SYSTEM)

    def test_middle_tiers_fall_back_to_scalar_engine(self):
        assert not cohort_eligible(compressed_memory_system((LZ4_POINT,)))

    def test_terminal_compressed_tier_without_middle_is_eligible(self):
        # A compressed *slow* tier is still a plain two-tier system: its
        # codec latencies are baked into the TierSpec the batch kernel
        # already reads.
        assert cohort_eligible(
            compressed_memory_system((ZSTD_POINT,), slow=None)
        )
