"""The cluster fleet layer: routing, crash semantics, re-dispatch,
re-placement, replication and the fleet degradation ladder.

The load-bearing guarantee is pinned first: a one-host zero-fault
cluster serves **byte-identically** to the bare single-host
:class:`~repro.platform.server.ServerlessPlatform` — the fleet layer is
pure orchestration until a host fault actually fires.  Everything else
layers on top: a crash kills overlapping in-flight requests and evicts
host memory, killed/unroutable requests re-dispatch with bounded
backoff and are shed with a typed :class:`~repro.errors.ClusterError`
when the budget runs out (no request is ever silently lost), replicas
adopt prepared snapshots and absorb failover, and the fleet ladder
throttles pre-warm / sheds batch as hosts disappear.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterPlatform,
    FLEET_SUITE,
    fleet_function,
    steady_requests,
)
from repro.core.toss import Phase, TossConfig
from repro.errors import ConfigError, SchedulerError
from repro.faults.plan import FaultPlan, HostFaultSpec
from repro.obs import observing
from repro.platform.overload import HealthState
from repro.platform.server import ServerlessPlatform

SMALL_TOSS = TossConfig(convergence_window=3, min_profiling_invocations=3)


def make_cluster(plan=None, **cfg_kwargs):
    cluster = ClusterPlatform(
        ClusterConfig(**cfg_kwargs), toss_cfg=SMALL_TOSS, plan=plan
    )
    cluster.deploy_fleet(list(FLEET_SUITE))
    return cluster


def crash_plan(*hosts, window=(2.0, 6.0)):
    return FaultPlan(
        hosts=tuple(
            HostFaultSpec(host=h, crash_windows=(window,)) for h in hosts
        )
    )


class TestSingleHostIdentity:
    """Golden regression: N=1, zero faults == the bare platform."""

    def test_zero_fault_n1_cluster_is_byte_identical(self):
        requests = steady_requests(n_requests=48, duration_s=4.0)

        single = ServerlessPlatform(n_cores=4, toss_cfg=SMALL_TOSS)
        for function in FLEET_SUITE:
            single.deploy(function)
        expected = single.serve(requests)

        cluster = make_cluster(n_hosts=1, replication_factor=1,
                               cores_per_host=4)
        outcomes = cluster.serve(requests)

        assert len(outcomes) == len(expected)
        for outcome, entry in zip(outcomes, expected):
            assert outcome.entry == entry
            assert outcome.host == 0
            assert outcome.attempts == 1
            assert outcome.redispatches == 0
        # The orchestration layer left no trace of itself.
        assert cluster.total_redispatches == 0
        assert cluster.total_failovers == 0
        assert cluster.total_kills() == 0
        assert cluster.hosts[0].platform.span_prefix == ""

    def test_zero_fault_multi_host_serves_everything_once(self):
        cluster = make_cluster(n_hosts=4, replication_factor=2)
        outcomes = cluster.serve(
            steady_requests(n_requests=64, duration_s=4.0)
        )
        assert len(outcomes) == 64
        assert all(o.served for o in outcomes)
        assert cluster.availability() == 1.0
        assert cluster.unaccounted() == 0
        # Multi-host platforms carry per-host span prefixes.
        assert cluster.hosts[2].platform.span_prefix == "host2/"

    def test_cluster_runs_are_deterministic(self):
        def run():
            cluster = make_cluster(
                plan=crash_plan(0, 1), n_hosts=4, replication_factor=2
            )
            return cluster.serve(
                steady_requests(n_requests=80, duration_s=8.0)
            )

        first, second = run(), run()
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a == b


class TestCrashAndRedispatch:
    def kill_scenario(self, replication_factor):
        """A long request straddling host 0's crash at t=2.0."""
        cluster = ClusterPlatform(
            ClusterConfig(
                n_hosts=2,
                replication_factor=replication_factor,
                cores_per_host=2,
            ),
            toss_cfg=SMALL_TOSS,
            plan=crash_plan(0),
        )
        slow = fleet_function("slowpoke", 128, 0.05)
        cluster.deploy(slow)
        requests = [(0.1 * i, "slowpoke", i % 4) for i in range(12)]
        requests.append((1.9, "slowpoke", 3))  # xl input: ~0.4 s of work
        return cluster, cluster.serve(requests)

    def test_crash_kills_inflight_request_and_replica_serves_it(self):
        cluster, outcomes = self.kill_scenario(replication_factor=2)
        victim = [o for o in outcomes if o.arrival_s == 1.9][0]
        assert victim.kills >= 1
        assert victim.redispatches >= 1
        assert victim.served
        assert victim.host == 1
        assert victim.backoff_s > 0.0
        assert cluster.total_kills() >= 1
        assert cluster.total_failovers >= 1
        # The replica had adopted the primary's prepared state, so it
        # serves tiered immediately — no second profiling run.
        dep = cluster.hosts[1].platform.deployments["slowpoke"]
        assert dep.controller.phase is Phase.TIERED
        assert cluster.hosts[1].adoptions >= 1
        assert cluster.unaccounted() == 0

    def test_crash_evicts_keepalive_and_prewarm_state(self):
        cluster = ClusterPlatform(
            ClusterConfig(n_hosts=2, replication_factor=2),
            toss_cfg=SMALL_TOSS,
            plan=crash_plan(0),
            keepalive_mb=1024.0,
            prewarm=True,
        )
        slow = fleet_function("slowpoke", 128, 0.05)
        cluster.deploy(slow)
        requests = [(0.1 * i, "slowpoke", i % 4) for i in range(12)]
        requests.append((1.9, "slowpoke", 3))
        cluster.serve(requests)
        victim_platform = cluster.hosts[0].platform
        assert victim_platform.keepalive.used_mb == 0.0
        assert not victim_platform.prewarm.predictors

    def test_unreplicated_fleet_sheds_typed_when_backoff_runs_out(self):
        # Re-placement lands long after the re-dispatch budget: requests
        # arriving early in the outage *must* shed, visibly and typed.
        cluster = make_cluster(
            plan=crash_plan(0),
            n_hosts=4,
            replication_factor=1,
            re_replication_delay_s=1.0,
        )
        outcomes = cluster.serve(
            steady_requests(n_requests=200, duration_s=8.0)
        )
        shed = [o for o in outcomes if o.cluster_shed]
        assert shed
        assert cluster.availability() < 1.0
        for o in shed:
            assert o.shed_reason.startswith("redispatch-exhausted")
            assert "ClusterError" not in o.error  # message, not repr
            assert "shed by the cluster" in o.error
            assert o.redispatches == cluster.config.max_redispatch_attempts
        assert cluster.unaccounted() == 0
        # The crashed host's functions were re-placed onto survivors,
        # so traffic after the copy landed is served again.
        assert cluster.replacements_applied
        late = [o for o in outcomes if o.arrival_s >= 4.0]
        assert all(o.served for o in late)

    def test_replicated_fleet_holds_availability_floor(self):
        cluster = make_cluster(
            plan=crash_plan(0),
            n_hosts=4,
            replication_factor=2,
            re_replication_delay_s=1.0,
        )
        outcomes = cluster.serve(
            steady_requests(n_requests=200, duration_s=8.0)
        )
        assert cluster.availability() >= 0.99
        assert cluster.total_failovers > 0
        assert cluster.unaccounted() == 0
        assert all(
            o.redispatches <= cluster.config.max_redispatch_attempts
            for o in outcomes
        )

    def test_no_live_holder_ever_sheds_everything_typed(self):
        cluster = ClusterPlatform(
            ClusterConfig(n_hosts=1, replication_factor=1),
            toss_cfg=SMALL_TOSS,
            plan=crash_plan(0, window=(0.0, 100.0)),
        )
        cluster.deploy(fleet_function("orphan", 128, 0.002))
        outcomes = cluster.serve([(0.5 * i, "orphan", 0) for i in range(6)])
        assert all(o.cluster_shed for o in outcomes)
        assert all(o.attempts == 0 for o in outcomes)
        assert all(o.error for o in outcomes)
        assert cluster.unaccounted() == 0

    def test_partition_fails_over_without_kills(self):
        plan = FaultPlan(
            hosts=(
                HostFaultSpec(host=0, partition_windows=((2.0, 6.0),)),
            )
        )
        cluster = make_cluster(plan=plan, n_hosts=4, replication_factor=2)
        outcomes = cluster.serve(
            steady_requests(n_requests=120, duration_s=8.0)
        )
        assert cluster.total_kills() == 0
        assert cluster.total_failovers > 0
        assert all(o.served for o in outcomes)
        assert cluster.availability() == 1.0


class TestFleetLadder:
    def test_half_fleet_down_degrades_then_recovers(self):
        cluster = make_cluster(
            plan=crash_plan(0, 1), n_hosts=4, replication_factor=2
        )
        cluster.serve(steady_requests(n_requests=160, duration_s=8.0))
        ladder = cluster.fleet_ladder
        moves = {(old, new) for _, old, new in ladder.transitions}
        # One rung at a time, up while half the fleet is down ...
        assert (HealthState.HEALTHY, HealthState.PRESSURED) in moves
        assert (HealthState.PRESSURED, HealthState.DEGRADED) in moves
        # ... and back down once the hosts return.
        assert (HealthState.DEGRADED, HealthState.PRESSURED) in moves
        assert ladder.state in (HealthState.HEALTHY, HealthState.PRESSURED)
        # Transition timestamps are monotone.
        stamps = [at for at, _, _ in ladder.transitions]
        assert stamps == sorted(stamps)

    def test_shedding_fleet_rejects_batch_at_admission(self):
        # 3 of 4 hosts down crosses the shedding rung: batch traffic
        # arriving then is refused before it is ever routed.
        cluster = make_cluster(
            plan=crash_plan(0, 1, 2), n_hosts=4, replication_factor=2
        )
        outcomes = cluster.serve(
            steady_requests(n_requests=200, duration_s=8.0)
        )
        fleet_shed = [
            o for o in outcomes if o.shed_reason == "fleet-shedding"
        ]
        assert fleet_shed
        assert all(o.request_class == "batch" for o in fleet_shed)
        # Fleet-shedding is a policy decision: it does not count
        # against availability, and latency traffic still found a host.
        latency = [o for o in outcomes if o.request_class == "latency"]
        assert any(o.served for o in latency)

    def test_degraded_fleet_throttles_prewarm_everywhere(self):
        cluster = ClusterPlatform(
            ClusterConfig(n_hosts=4, replication_factor=2),
            toss_cfg=SMALL_TOSS,
            plan=crash_plan(0, 1),
            prewarm=True,
        )
        cluster.deploy_fleet(list(FLEET_SUITE))
        cluster.serve(steady_requests(n_requests=120, duration_s=5.5))
        # The stream ends inside the outage (fleet DEGRADED): the last
        # wave was served with pre-warm suspended on every host.
        assert cluster.fleet_ladder.state >= HealthState.DEGRADED
        assert all(
            host.platform.prewarm.fleet_throttled for host in cluster.hosts
        )


class TestClusterMetrics:
    def test_chaos_run_emits_cluster_metric_families(self):
        with observing() as obs:
            cluster = make_cluster(
                plan=crash_plan(0, 1), n_hosts=4, replication_factor=2
            )
            cluster.serve(steady_requests(n_requests=120, duration_s=8.0))
        names = {f.name for f in obs.metrics.families()}
        assert "toss_cluster_requests_total" in names
        assert "toss_cluster_redispatches_total" in names
        assert "toss_cluster_replacements_total" in names
        assert "toss_cluster_failovers_total" in names
        assert "toss_cluster_health_transitions_total" in names

    def test_multi_host_spans_carry_host_prefixes(self):
        with observing() as obs:
            cluster = make_cluster(n_hosts=2, replication_factor=1)
            cluster.serve(steady_requests(n_requests=16, duration_s=2.0))
        prefixes = {
            s.name.split("/")[0]
            for s in obs.tracer.spans
            if s.name.startswith("host")
        }
        assert prefixes == {"host0", "host1"}


class TestValidationAndConfig:
    def test_unknown_function_rejected(self):
        cluster = make_cluster(n_hosts=2)
        with pytest.raises(SchedulerError, match="not deployed"):
            cluster.serve([(0.0, "ghost", 0)])

    def test_bad_input_index_rejected(self):
        cluster = make_cluster(n_hosts=2)
        with pytest.raises(SchedulerError, match="input_index"):
            cluster.serve([(0.0, "fleet_api", 9)])

    def test_malformed_tuple_rejected(self):
        cluster = make_cluster(n_hosts=2)
        with pytest.raises(SchedulerError, match="malformed"):
            cluster.serve([(0.0, "fleet_api")])

    def test_unknown_request_class_rejected(self):
        cluster = make_cluster(n_hosts=2)
        with pytest.raises(SchedulerError, match="unknown request class"):
            cluster.serve([(0.0, "fleet_api", 0, "bulk")])

    def test_deploy_is_idempotent(self):
        cluster = make_cluster(n_hosts=4, replication_factor=2)
        holders = cluster.deploy(FLEET_SUITE[0])
        assert holders == cluster.placement.base_holders("fleet_api")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_hosts=0),
            dict(replication_factor=0),
            dict(n_hosts=2, replication_factor=3),
            dict(cores_per_host=0),
            dict(max_redispatch_attempts=-1),
            dict(redispatch_backoff_base_s=0.0),
            dict(redispatch_backoff_base_s=0.5, redispatch_backoff_cap_s=0.1),
            dict(re_replication_delay_s=-1.0),
            dict(hosts_down_pressured=0.0),
            dict(hosts_down_pressured=0.8, hosts_down_degraded=0.5),
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterConfig(**kwargs)

    def test_backoff_schedule_is_capped_exponential(self):
        cfg = ClusterConfig(
            redispatch_backoff_base_s=0.05, redispatch_backoff_cap_s=0.4
        )
        assert cfg.backoff_s(1) == pytest.approx(0.05)
        assert cfg.backoff_s(2) == pytest.approx(0.10)
        assert cfg.backoff_s(3) == pytest.approx(0.20)
        assert cfg.backoff_s(4) == pytest.approx(0.40)
        assert cfg.backoff_s(5) == pytest.approx(0.40)
        with pytest.raises(ConfigError):
            cfg.backoff_s(0)
