"""Tests for deterministic RNG stream derivation."""

from __future__ import annotations

import numpy as np

from repro.rng import derive_seed, spawn, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_key_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_key_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_64_bit_range(self):
        s = derive_seed(123, "x")
        assert 0 <= s < 2**64


class TestStream:
    def test_reproducible(self):
        a = stream(7, "alpha").integers(0, 1000, size=10)
        b = stream(7, "alpha").integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_independent_streams_differ(self):
        a = stream(7, "alpha").integers(0, 2**31, size=16)
        b = stream(7, "beta").integers(0, 2**31, size=16)
        assert not np.array_equal(a, b)


class TestSpawn:
    def test_spawn_deterministic_given_parent_state(self):
        parent1 = stream(9, "p")
        parent2 = stream(9, "p")
        a = spawn(parent1, "child").integers(0, 1000, size=8)
        b = spawn(parent2, "child").integers(0, 1000, size=8)
        np.testing.assert_array_equal(a, b)

    def test_spawn_advances_parent(self):
        parent = stream(9, "p")
        before = parent.bit_generator.state["state"]["state"]
        spawn(parent, "c")
        after = parent.bit_generator.state["state"]["state"]
        assert before != after
