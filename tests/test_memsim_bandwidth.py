"""Tests for the shared-resource contention model."""

from __future__ import annotations

import pytest

from repro import config
from repro.errors import ConfigError
from repro.memsim.bandwidth import ContentionModel, TierDemand
from repro.memsim.storage import OPTANE_SSD_SPEC
from repro.memsim.tiers import DEFAULT_MEMORY_SYSTEM


def model(**kwargs) -> ContentionModel:
    return ContentionModel(DEFAULT_MEMORY_SYSTEM, OPTANE_SSD_SPEC, **kwargs)


class TestTierDemand:
    def test_nominal_time_sums_components(self):
        d = TierDemand(
            cpu_time_s=1.0,
            fast_stall_s=0.1,
            slow_read_stall_s=0.2,
            slow_write_stall_s=0.3,
            ssd_stall_s=0.4,
            uffd_stall_s=0.5,
        )
        assert d.nominal_time_s == pytest.approx(2.5)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            TierDemand(cpu_time_s=-1.0)
        with pytest.raises(ConfigError):
            TierDemand(cpu_time_s=1.0, ssd_ops=-1)


class TestContention:
    def test_empty_demands(self):
        assert model().contended_times([]) == []

    def test_single_light_demand_unchanged(self):
        d = TierDemand(cpu_time_s=1.0, slow_read_stall_s=0.1, slow_read_ops=1e5)
        times = model().contended_times([d])
        # M/M/1 inflation is 1/(1-rho): slightly above 1 even at light load.
        assert times[0] == pytest.approx(d.nominal_time_s, rel=1e-2)
        assert times[0] >= d.nominal_time_s

    def test_cpu_time_never_inflated(self):
        d = TierDemand(cpu_time_s=1.0)
        times = model().contended_times([d] * 20)
        assert all(t == pytest.approx(1.0) for t in times)

    def test_saturation_inflates(self):
        # Offered slow-read rate of 10x the capacity must slow things down.
        ops = config.PMEM_READ_OPS_CAP * 10
        d = TierDemand(cpu_time_s=0.1, slow_read_stall_s=0.9, slow_read_ops=ops)
        t = model().contended_times([d])[0]
        assert t > 2 * d.nominal_time_s

    def test_monotone_in_concurrency(self):
        d = TierDemand(
            cpu_time_s=0.2,
            slow_write_stall_s=0.2,
            slow_write_ops=config.PMEM_WRITE_OPS_CAP * 0.1,
        )
        times = [
            model().contended_times([d] * c)[0] for c in (1, 5, 10, 20)
        ]
        assert times == sorted(times)

    def test_throughput_conserved_at_saturation(self):
        # When a resource saturates, aggregate service rate ~= capacity.
        ops = config.UFFD_HANDLER_OPS_CAP  # each invocation wants the cap
        d = TierDemand(
            cpu_time_s=0.01,
            uffd_stall_s=ops * config.UFFD_FAULT_LATENCY_S,
            uffd_ops=ops,
        )
        n = 10
        times = model().contended_times([d] * n)
        rate = sum(ops / t for t in times)
        # The M/M/1 closed loop settles below capacity (queueing delay
        # throttles the offered load before full saturation) but must
        # never serve more than the device can.
        assert rate <= config.UFFD_HANDLER_OPS_CAP * (1 + 1e-6)
        assert rate >= 0.5 * config.UFFD_HANDLER_OPS_CAP

    def test_heterogeneous_demands_keep_order(self):
        light = TierDemand(cpu_time_s=0.1)
        heavy = TierDemand(
            cpu_time_s=0.1,
            slow_write_stall_s=1.0,
            slow_write_ops=config.PMEM_WRITE_OPS_CAP,
        )
        times = model().contended_times([light, heavy])
        assert times[0] < times[1]

    def test_inflation_factors_identify_bottleneck(self):
        ops = config.PMEM_WRITE_OPS_CAP * 3
        d = TierDemand(
            cpu_time_s=0.1, slow_write_stall_s=0.5, slow_write_ops=ops
        )
        factors = model().inflation_factors([d] * 4)
        assert factors["slow_write"] > 1.5
        assert factors["fast"] == pytest.approx(1.0)

    def test_inflation_factors_empty(self):
        assert model().inflation_factors([]) == {
            "fast": 1.0,
            "slow_read": 1.0,
            "slow_write": 1.0,
            "ssd": 1.0,
            "uffd": 1.0,
        }

    def test_inflation_bounded(self):
        d = TierDemand(
            cpu_time_s=1e-6,
            ssd_stall_s=1.0,
            ssd_ops=config.SSD_RANDOM_READ_IOPS * 100,
        )
        factors = model().inflation_factors([d] * 20)
        assert factors["ssd"] <= config.MAX_QUEUE_INFLATION

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigError):
            model(max_iterations=0)
        with pytest.raises(ConfigError):
            model(damping=0.0)
        with pytest.raises(ConfigError):
            model(uffd_capacity_ops=0.0)
