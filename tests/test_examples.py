"""Smoke tests: the example scripts run and produce their key output."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "pyaes")
        assert "converged after" in out
        assert "slow tier share" in out
        assert "tiered serving" in out

    def test_custom_function(self):
        out = run_example("custom_function.py")
        assert "thumbnailer" in out
        assert "What-if" in out
        assert "dram+nvme" in out

    @pytest.mark.slow
    def test_compare_systems(self):
        out = run_example("compare_systems.py", "pyaes", timeout=300)
        assert "faasnap working set" in out
        assert "concurrency" in out.lower()
