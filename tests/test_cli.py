"""Tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "pagerank" in out and "1024" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig42"])

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "done in" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_plot_writes_svg(self, tmp_path, capsys):
        out = tmp_path / "fig2.svg"
        assert main(["plot", "fig2", "--out", str(out)]) == 0
        svg = out.read_text()
        assert svg.startswith("<svg") and "slowdown" in svg

    def test_plot_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["plot", "fig42"])

    def test_observe_writes_trace_exports(self, tmp_path, capsys):
        import json

        assert main(["observe", "fig1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "observed" in out and "captured" in out
        trace = json.loads((tmp_path / "fig1.perfetto.json").read_text())
        assert trace["traceEvents"][0]["ph"] == "M"
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        jsonl = (tmp_path / "fig1.spans.jsonl").read_text()
        assert jsonl and json.loads(jsonl.splitlines()[0])["span_id"]
        # Metrics are opt-in (--include-metrics): trace-only by default.
        assert not (tmp_path / "fig1.metrics.prom").exists()

    def test_observe_include_metrics_writes_prometheus(self, tmp_path):
        assert main(
            ["observe", "fig1", "--out", str(tmp_path), "--include-metrics"]
        ) == 0
        prom = (tmp_path / "fig1.metrics.prom").read_text()
        assert "toss_execute_seconds_p95" in prom

    def test_observe_is_inert_afterwards(self, tmp_path, capsys):
        from repro.obs import runtime

        assert main(["observe", "fig1", "--out", str(tmp_path)]) == 0
        assert runtime.active() is None

    def test_observe_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["observe", "fig42"])
