"""Tests for function models and the Table I suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.errors import ConfigError
from repro.functions import (
    INPUT_LABELS,
    SUITE,
    FunctionModel,
    InputSpec,
    evaluation_grid,
    get_function,
    table1,
)


class TestInputSpec:
    def test_valid(self):
        InputSpec("x", 0.1, 0.05, 0.3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(t_dram_s=0.0, stall_share=0.1, ws_fraction=0.1),
            dict(t_dram_s=0.1, stall_share=0.0, ws_fraction=0.1),
            dict(t_dram_s=0.1, stall_share=1.0, ws_fraction=0.1),
            dict(t_dram_s=0.1, stall_share=0.1, ws_fraction=0.0),
            dict(t_dram_s=0.1, stall_share=0.1, ws_fraction=1.1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            InputSpec("x", **kwargs)


class TestFunctionModel:
    def test_geometry(self, tiny_function):
        assert tiny_function.n_pages == 128 * 256
        assert tiny_function.ws_pages(0) == round(0.05 * tiny_function.n_pages)

    def test_total_accesses_from_stall_share(self, tiny_function):
        spec = tiny_function.input_spec(3)
        expected = spec.t_dram_s * spec.stall_share / config.DRAM_LOAD_LATENCY_S
        assert tiny_function.total_accesses(3) == pytest.approx(expected, abs=1)

    def test_input_index_validated(self, tiny_function):
        with pytest.raises(ConfigError):
            tiny_function.input_spec(4)
        with pytest.raises(ConfigError):
            tiny_function.input_spec(-1)

    def test_guest_must_be_bundle_multiple(self, tiny_function):
        with pytest.raises(ConfigError):
            FunctionModel(
                name="bad",
                description="",
                guest_mb=100,
                input_type="N",
                inputs=tiny_function.inputs,
                bands=tiny_function.bands,
            )

    def test_inputs_must_be_time_ordered(self, tiny_function):
        with pytest.raises(ConfigError):
            FunctionModel(
                name="bad",
                description="",
                guest_mb=128,
                input_type="N",
                inputs=tuple(reversed(tiny_function.inputs)),
                bands=tiny_function.bands,
            )

    def test_trace_reproducible(self, tiny_function):
        a = tiny_function.trace(1, 7)
        b = tiny_function.trace(1, 7)
        np.testing.assert_array_equal(a.histogram, b.histogram)
        assert a.cpu_time_s == b.cpu_time_s

    def test_trace_varies_with_seed(self, tiny_function):
        a = tiny_function.trace(1, 7)
        b = tiny_function.trace(1, 8)
        assert not np.array_equal(a.histogram, b.histogram)

    def test_trace_ws_matches_spec(self, tiny_function):
        trace = tiny_function.trace(2, 0)
        assert trace.working_set_pages == tiny_function.ws_pages(2)

    def test_trace_accesses_match_spec(self, tiny_function):
        trace = tiny_function.trace(3, 0)
        assert trace.total_accesses == tiny_function.total_accesses(3)

    def test_epoch_count(self, tiny_function):
        assert len(tiny_function.trace(0, 0).epochs) == tiny_function.n_epochs

    def test_store_fraction_propagates(self, tiny_function):
        trace = tiny_function.trace(0, 0)
        assert all(
            e.store_fraction == tiny_function.store_fraction for e in trace.epochs
        )

    def test_epoch_histograms_sum_to_total(self, tiny_function):
        trace = tiny_function.trace(3, 5)
        per_epoch = sum(e.total_accesses for e in trace.epochs)
        assert per_epoch == trace.total_accesses


class TestSuite:
    def test_ten_functions_paper_order(self):
        assert len(SUITE) == 10
        assert [f.name for f in SUITE][:3] == [
            "float_operation",
            "pyaes",
            "json_load_dump",
        ]
        assert SUITE[7].name == "pagerank"

    def test_table1_memory_configs(self):
        by_name = {f.name: f.guest_mb for f in SUITE}
        assert by_name["float_operation"] == 128
        assert by_name["compress"] == 256
        assert by_name["pagerank"] == 1024
        assert by_name["lr_training"] == 1024

    def test_every_function_has_four_inputs(self):
        for f in SUITE:
            assert f.n_inputs == 4

    def test_input_iv_is_longest(self):
        for f in SUITE:
            times = [s.t_dram_s for s in f.inputs]
            assert times[-1] == max(times)

    def test_get_function(self):
        assert get_function("matmul").name == "matmul"
        with pytest.raises(KeyError):
            get_function("nope")

    def test_pagerank_is_most_memory_intensive(self):
        stalls = {f.name: f.inputs[-1].stall_share for f in SUITE}
        assert stalls["pagerank"] == max(stalls.values())

    def test_compress_is_least_memory_intensive(self):
        stalls = {f.name: f.inputs[-1].stall_share for f in SUITE}
        assert stalls["compress"] == min(stalls.values())

    def test_table1_rows(self):
        rows = table1()
        assert len(rows) == 10
        assert rows[0].inputs == ("N=10", "N=100", "N=1000", "N=10000")
        assert all(len(r.inputs) == 4 for r in rows)

    def test_evaluation_grid_size(self):
        grid = list(evaluation_grid())
        assert len(grid) == 40
        assert grid[0][2] == INPUT_LABELS[0]

    def test_suite_traces_build(self):
        # Smallest input of each function builds quickly and correctly.
        for f in SUITE:
            trace = f.trace(0, 0)
            assert trace.n_pages == f.n_pages
            assert trace.total_accesses > 0
