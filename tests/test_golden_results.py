"""Golden-result regression: the event kernel must not move the figures.

``tests/fixtures/`` holds the rendered result tables committed before the
event-driven engine replaced the wave scheduler.  Single-invocation (C=1)
numbers — where no contention exists and the event engine's equilibrium
is exactly the analytic solve — must reproduce byte-for-byte at the
tables' rendered precision; contended fig9 cells must stay within a
small tolerance of the recorded trend.

The subsets used here were verified to be order-independent: every
fixture row compared is produced by per-function seeds, so running one
function alone yields the same bytes as the full-suite run that wrote
``results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import fig7_setup_time, fig8_invocation_time, fig9_scalability

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_rows(name: str) -> list[list[str]]:
    """Whitespace-split non-header lines of a fixture table."""
    lines = (FIXTURES / name).read_text().splitlines()
    return [line.split() for line in lines if line and not set(line) <= {"-", " "}]


def row_for(rows: list[list[str]], *prefix: str) -> list[str]:
    for row in rows:
        if tuple(row[: len(prefix)]) == prefix:
            return row
    raise AssertionError(f"no fixture row {prefix}")


def fmt(value: float) -> str:
    """The tables' rendering of a float (precision=2)."""
    return f"{value:.2f}"


class TestFig7Golden:
    """Setup times are single restores — exact at rendered precision."""

    def test_rows_byte_identical(self):
        rows = fixture_rows("fig7_setup_time.txt")
        res = fig7_setup_time.run(function_names=["pyaes", "compress"])
        for name in ("pyaes", "compress"):
            golden = row_for(rows, name)
            assert [
                fmt(res.toss[name]),
                fmt(res.reap_min[name]),
                fmt(res.reap_avg[name]),
                fmt(res.reap_max[name]),
            ] == golden[1:]


class TestFig8Golden:
    """Total invocation times (CLI settings: iterations=2) — exact."""

    def test_rows_byte_identical(self):
        rows = fixture_rows("fig8_invocation_time.txt")
        res = fig8_invocation_time.run(
            function_names=["float_operation"], iterations=2
        )
        for label in ("I", "II", "III", "IV"):
            golden = row_for(rows, "float_operation", label)
            key = ("float_operation", label)
            assert [
                fmt(res.toss[key]),
                fmt(res.reap_avg[key]),
                fmt(res.reap_max[key]),
            ] == golden[2:]


class TestFig9Golden:
    """C=1 is the uncontended equilibrium — exact; trends within 5%."""

    @pytest.fixture(scope="class")
    def result(self):
        return fig9_scalability.run(function_names=["pyaes"])

    def test_c1_byte_identical(self, result):
        rows = fixture_rows("fig9_scalability.txt")
        for system in ("dram", "toss", "reap-best", "reap-worst"):
            golden = row_for(rows, "pyaes", system)
            assert fmt(result.slowdown[(system, "pyaes", 1)]) == golden[2]

    def test_contended_trend_within_tolerance(self, result):
        rows = fixture_rows("fig9_scalability.txt")
        for system in ("dram", "toss", "reap-best", "reap-worst"):
            golden = row_for(rows, "pyaes", system)
            for col, c in zip(golden[3:], (5, 10, 20)):
                recorded = float(col)
                assert result.slowdown[(system, "pyaes", c)] == pytest.approx(
                    recorded, rel=0.05
                )

    def test_utilization_telemetry_present(self, result):
        summary = result.utilization[("reap-worst", "pyaes", 20)]
        assert set(summary) == {"fast", "slow_read", "slow_write", "ssd", "uffd"}
        # REAP-Worst's contended execution leans on the fault-service path.
        assert summary["uffd"]["peak_rho"] > summary["slow_write"]["peak_rho"]
