"""Tests for the keep-alive cache and its TOSS integration."""

from __future__ import annotations

import pytest

from repro.core.toss import Phase, TossConfig
from repro.errors import SchedulerError
from repro.platform import KeepAliveCache, ServerlessPlatform


class TestGreedyDualCache:
    def test_miss_then_hit(self):
        cache = KeepAliveCache(1024)
        assert not cache.lookup("f")
        assert cache.admit("f", fast_mb=100, init_cost_s=0.01)
        assert cache.lookup("f")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_capacity_enforced(self):
        cache = KeepAliveCache(256)
        cache.admit("a", fast_mb=128, init_cost_s=0.01)
        cache.admit("b", fast_mb=128, init_cost_s=0.01)
        assert cache.used_mb <= 256
        cache.admit("c", fast_mb=128, init_cost_s=1.0)  # expensive newcomer
        assert cache.used_mb <= 256
        assert cache.evictions >= 1
        assert "c" in cache.warm_functions

    def test_oversized_entry_rejected(self):
        cache = KeepAliveCache(100)
        assert not cache.admit("huge", fast_mb=200, init_cost_s=1.0)

    def test_valuable_entries_survive(self):
        """Greedy-Dual: a cheap newcomer cannot evict expensive entries."""
        cache = KeepAliveCache(256)
        cache.admit("gold", fast_mb=256, init_cost_s=10.0)
        assert not cache.admit("dust", fast_mb=256, init_cost_s=1e-6)
        assert "gold" in cache.warm_functions

    def test_frequency_raises_priority(self):
        cache = KeepAliveCache(200)
        cache.admit("hot", fast_mb=100, init_cost_s=0.01)
        cache.admit("cold", fast_mb=100, init_cost_s=0.01)
        for _ in range(50):
            cache.lookup("hot")
        cache.admit("new", fast_mb=100, init_cost_s=0.01)
        assert "hot" in cache.warm_functions
        assert "cold" not in cache.warm_functions

    def test_invalidate(self):
        cache = KeepAliveCache(100)
        cache.admit("f", fast_mb=10, init_cost_s=0.1)
        cache.invalidate("f")
        assert not cache.lookup("f")

    def test_invalid_inputs(self):
        with pytest.raises(SchedulerError):
            KeepAliveCache(0)
        cache = KeepAliveCache(10)
        with pytest.raises(SchedulerError):
            cache.admit("f", fast_mb=0, init_cost_s=0.1)


class TestReAdmissionFootprint:
    """Re-admission must bill the *current* fast-tier footprint.

    The old ``admit`` returned early when the name was already resident,
    so a VM whose tiering shrank (or a re-profiled VM that grew) kept
    being billed at the footprint frozen at first admission — silently
    wasting headroom in the shrink case and overcommitting DRAM in the
    grow case."""

    def test_shrink_then_grow_refreshes_billing(self):
        cache = KeepAliveCache(150)
        assert cache.admit("f", fast_mb=100, init_cost_s=0.5)
        # Tiering moved most pages to the slow tier: re-admission now
        # pins 40 MB, and the freed headroom must be real.
        assert cache.admit("f", fast_mb=40, init_cost_s=0.5)
        assert cache.used_mb == pytest.approx(40.0)
        assert cache.admit("g", fast_mb=100, init_cost_s=0.5)
        assert cache.evictions == 0
        assert cache.warm_functions == {"f", "g"}
        # Growing back re-competes for capacity instead of sliding in at
        # the stale 40 MB billing: g must be evicted to make room.
        assert cache.admit("f", fast_mb=140, init_cost_s=5.0)
        assert cache.used_mb == pytest.approx(140.0)
        assert cache.used_mb <= cache.capacity_mb
        assert cache.evictions == 1
        assert cache.warm_functions == {"f"}

    def test_grown_footprint_cannot_overcommit(self):
        cache = KeepAliveCache(150)
        cache.admit("gold", fast_mb=50, init_cost_s=10.0)
        cache.admit("f", fast_mb=50, init_cost_s=0.001)
        # f grew past the remaining headroom and is too cheap to evict
        # the expensive neighbour: admission must fail, never leave the
        # cache over budget, and drop the stale 50 MB entry (its
        # footprint no longer exists).
        assert not cache.admit("f", fast_mb=140, init_cost_s=0.001)
        assert cache.used_mb <= cache.capacity_mb
        assert "gold" in cache.warm_functions
        assert "f" not in cache.warm_functions

    def test_readmission_keeps_frequency(self):
        cache = KeepAliveCache(300)
        cache.admit("hot", fast_mb=100, init_cost_s=0.01)
        for _ in range(50):
            cache.lookup("hot")
        # Re-admission at a new footprint keeps the earned frequency, so
        # the entry still outranks a same-cost newcomer.
        cache.admit("hot", fast_mb=150, init_cost_s=0.01)
        cache.admit("cold", fast_mb=150, init_cost_s=0.01)
        cache.admit("new", fast_mb=150, init_cost_s=0.01)
        assert "hot" in cache.warm_functions
        assert "cold" not in cache.warm_functions


class TestPlatformIntegration:
    def _platform(self, keepalive):
        return ServerlessPlatform(
            n_cores=4,
            toss_cfg=TossConfig(convergence_window=3,
                                min_profiling_invocations=3),
            keepalive=keepalive,
        )

    def test_warm_starts_skip_setup(self, tiny_function):
        cache = KeepAliveCache(1024)
        platform = self._platform(cache)
        platform.deploy(tiny_function)
        log = platform.serve([(0.05 * i, "tiny", 3) for i in range(40)])
        tiered = [e for e in log if e.phase is Phase.TIERED]
        warm = [e for e in tiered if e.setup_time_s == 0.0]
        assert warm, "keep-alive never produced a warm start"
        # After the first tiered admit, every later request is warm.
        assert len(warm) >= len(tiered) - 1
        assert cache.hit_rate > 0.5

    def test_tiering_shrinks_cache_footprint(self, tiny_function):
        """The synergy: a tiered VM pins only its fast fraction of DRAM."""
        cache = KeepAliveCache(1024)
        platform = self._platform(cache)
        platform.deploy(tiny_function)
        platform.serve([(0.05 * i, "tiny", 3) for i in range(30)])
        dep = platform.deployments["tiny"]
        fast_mb = tiny_function.guest_mb * (1 - dep.controller.slow_fraction)
        assert cache.used_mb == pytest.approx(max(fast_mb, 1e-3), rel=1e-6)
        assert cache.used_mb < 0.3 * tiny_function.guest_mb
