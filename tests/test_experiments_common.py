"""Tests for the shared experiment plumbing and extended-suite TOSS runs."""

from __future__ import annotations

from repro.baselines import TossSystem
from repro.experiments.common import (
    ALL_INPUTS,
    INPUT_IV_ONLY,
    dram_cached,
    reap_cached,
    toss_cached,
    vanilla_cached,
    warm_time_cached,
)
from repro.functions.extended import get_extended_function


class TestCaches:
    def test_toss_cached_identity(self):
        a = toss_cached("pyaes", ALL_INPUTS)
        b = toss_cached("pyaes", ALL_INPUTS)
        assert a is b

    def test_snapshot_variants_distinct(self):
        assert toss_cached("pyaes", ALL_INPUTS) is not toss_cached(
            "pyaes", INPUT_IV_ONLY
        )

    def test_reap_cached_keyed_by_snapshot_input(self):
        assert reap_cached("pyaes", 0) is not reap_cached("pyaes", 3)
        assert reap_cached("pyaes", 0) is reap_cached("pyaes", 0)

    def test_dram_and_vanilla_cached(self):
        assert dram_cached("pyaes") is dram_cached("pyaes")
        assert vanilla_cached("pyaes") is vanilla_cached("pyaes")

    def test_warm_time_positive_and_stable(self):
        a = warm_time_cached("pyaes", 3)
        b = warm_time_cached("pyaes", 3)
        assert a == b > 0


class TestExtendedSuiteEndToEnd:
    def test_web_render_tiers(self):
        """An extended-suite function runs the whole pipeline."""
        func = get_extended_function("web_render")
        system = TossSystem(func, convergence_window=4)
        assert system.slow_fraction > 0.8
        assert system.analysis.cost < 0.6
        out = system.invoke(3, 0)
        assert out.setup_time_s < 0.02
