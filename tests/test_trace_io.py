"""Tests for trace serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.trace.io import load_trace, save_trace, trace_from_csv, trace_to_csv

from conftest import make_trace


class TestNpzRoundTrip:
    def test_round_trip(self, tmp_path, tiny_function):
        trace = tiny_function.trace(2, 5)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.n_pages == trace.n_pages
        assert loaded.label == trace.label
        assert len(loaded.epochs) == len(trace.epochs)
        np.testing.assert_array_equal(loaded.histogram, trace.histogram)
        for a, b in zip(loaded.epochs, trace.epochs):
            assert a.cpu_time_s == pytest.approx(b.cpu_time_s)
            assert a.store_fraction == b.store_fraction
            np.testing.assert_array_equal(a.pages, b.pages)

    def test_empty_epoch_round_trip(self, tmp_path):
        trace = make_trace(pages=(), counts=())
        path = tmp_path / "empty.npz"
        save_trace(trace, path)
        assert load_trace(path).total_accesses == 0

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ConfigError):
            load_trace(path)


class TestCsv:
    def test_round_trip(self):
        trace = make_trace(pages=(1, 5, 9), counts=(10, 20, 30), n_epochs=2)
        text = trace_to_csv(trace)
        back = trace_from_csv(text, n_pages=trace.n_pages)
        np.testing.assert_array_equal(back.histogram, trace.histogram)
        assert len(back.epochs) == 2

    def test_header_optional(self):
        trace = trace_from_csv("0,3,7\n0,4,1\n", n_pages=16)
        assert trace.total_accesses == 8

    def test_duplicate_rows_accumulate(self):
        trace = trace_from_csv("0,3,5\n0,3,5\n", n_pages=16)
        assert trace.histogram[3] == 10

    def test_gap_epochs_become_empty(self):
        trace = trace_from_csv("0,1,1\n2,1,1\n", n_pages=16)
        assert len(trace.epochs) == 3
        assert trace.epochs[1].total_accesses == 0

    def test_metadata_defaults(self):
        trace = trace_from_csv(
            "0,0,1\n", n_pages=4, store_fraction=0.4, random_fraction=0.2
        )
        assert trace.epochs[0].store_fraction == 0.4
        assert trace.epochs[0].random_fraction == 0.2

    def test_invalid_rows_rejected(self):
        with pytest.raises(ConfigError):
            trace_from_csv("0,abc,1\n", n_pages=16)
        with pytest.raises(ConfigError):
            trace_from_csv("0,1,0\n", n_pages=16)
        with pytest.raises(ConfigError):
            trace_from_csv("", n_pages=16)

    def test_csv_trace_feeds_analysis(self):
        """A hand-made CSV trace runs through the placement pipeline."""
        rows = ["epoch,page,count"]
        for page in range(64):
            rows.append(f"0,{page},{1000 if page < 8 else 2}")
        trace = trace_from_csv("\n".join(rows), n_pages=4096)
        from repro.memsim.tiers import Tier
        from repro.vm.microvm import MicroVM

        slow = np.full(4096, int(Tier.SLOW), dtype=np.uint8)
        t_slow = MicroVM(4096, placement=slow).execute(trace).time_s
        t_fast = MicroVM(4096).execute(trace).time_s
        assert t_slow > t_fast
