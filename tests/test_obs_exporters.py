"""Exporter round-trips: Perfetto schema, JSONL reload, Prometheus text."""

from __future__ import annotations

import json
import re

from repro.obs import (
    MetricsRegistry,
    SpanStatus,
    Tracer,
    perfetto_json,
    prometheus_text,
    spans_from_jsonl,
    spans_to_jsonl,
    to_perfetto,
)


def sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("restore/toss", attrs={"n_mappings": 3}):
        tracer.record("restore/toss/vm-state", 0.005)
        tracer.record("restore/toss/mmap", 0.001)
        tracer.event("telemetry/tiered-invocation", attrs={"input_index": 2})
    tracer.record("execute", 0.25, status=SpanStatus.OK)
    tracer.event("telemetry/request-shed", at_s=0.3, attrs={"reason": "deadline"})
    return tracer


class TestPerfetto:
    def test_schema_fields(self):
        trace = to_perfetto(sample_tracer())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata first
        for ev in events:
            assert ev["ph"] in {"M", "X", "i"}
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            assert "ts" in ev
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
                assert "name" in ev and "cat" in ev

    def test_timestamps_are_microseconds(self):
        trace = to_perfetto(sample_tracer())
        mmap = next(
            e for e in trace["traceEvents"] if e["name"] == "restore/toss/mmap"
        )
        assert mmap["ts"] == 0.005 * 1e6
        assert mmap["dur"] == 0.001 * 1e6

    def test_parent_links_exported(self):
        trace = to_perfetto(sample_tracer())
        root = next(
            e for e in trace["traceEvents"] if e["name"] == "restore/toss"
        )
        child = next(
            e for e in trace["traceEvents"] if e["name"] == "restore/toss/mmap"
        )
        assert child["args"]["parent_id"] == root["args"]["span_id"]

    def test_orphan_events_are_process_instants(self):
        trace = to_perfetto(sample_tracer())
        shed = next(
            e
            for e in trace["traceEvents"]
            if e["name"] == "telemetry/request-shed"
        )
        assert shed["ph"] == "i" and shed["s"] == "p" and shed["tid"] == 0

    def test_concurrent_roots_get_distinct_lanes(self):
        tracer = Tracer()
        tracer.record("a", 2.0, start_s=0.0)
        tracer.seek(1.0)
        tracer.record("b", 2.0, start_s=1.0)  # overlaps a
        tracer.record("c", 1.0, start_s=3.0)  # fits a's freed lane
        trace = to_perfetto(tracer)
        tids = {
            e["name"]: e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert tids["a"] != tids["b"]
        assert tids["c"] == tids["a"]

    def test_json_is_deterministic_and_parseable(self):
        a = perfetto_json(sample_tracer())
        b = perfetto_json(sample_tracer())
        assert a == b
        json.loads(a)

    def test_lane_assignment_is_stable_for_children(self):
        # Children must ride their root's lane, including under
        # concurrency — and the assignment must be identical on every
        # export of the same trace.
        def build() -> Tracer:
            tracer = Tracer()
            with tracer.span("a"):
                tracer.record("a/child", 0.5)
                tracer.seek(2.0)
            tracer.seek(1.0)
            with tracer.span("b"):  # overlaps a
                tracer.record("b/child", 0.5)
                tracer.seek(3.0)
            return tracer

        trace = to_perfetto(build())
        tids = {
            e["name"]: e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert tids["a/child"] == tids["a"]
        assert tids["b/child"] == tids["b"]
        assert tids["a"] != tids["b"]
        assert perfetto_json(build()) == perfetto_json(build())


class TestJsonl:
    def test_round_trip_equality(self):
        tracer = sample_tracer()
        reloaded = spans_from_jsonl(spans_to_jsonl(tracer))
        assert reloaded == tracer.finished()

    def test_empty_tracer_round_trips(self):
        assert spans_from_jsonl(spans_to_jsonl(Tracer())) == []

    def test_one_json_object_per_line(self):
        text = spans_to_jsonl(sample_tracer())
        lines = text.strip().splitlines()
        assert len(lines) == len(sample_tracer().spans)
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_aborted_span_round_trips(self):
        tracer = Tracer()
        tracer.record(
            "request/json_load_dump",
            0.0,
            attrs={"shed_reason": "deadline"},
            status=SpanStatus.ABORTED,
        )
        (reloaded,) = spans_from_jsonl(spans_to_jsonl(tracer))
        assert reloaded.status is SpanStatus.ABORTED
        assert reloaded.attrs["shed_reason"] == "deadline"
        assert reloaded == tracer.finished()[0]

    def test_instant_events_round_trip(self):
        tracer = Tracer()
        with tracer.span("restore/toss"):
            tracer.event("queue-wait", attrs={"wait_s": 0.25})
            tracer.event("prefetch-hit", at_s=0.125)
        (reloaded,) = spans_from_jsonl(spans_to_jsonl(tracer))
        assert [e.name for e in reloaded.events] == [
            "queue-wait", "prefetch-hit",
        ]
        assert reloaded.events[0].attrs == {"wait_s": 0.25}
        assert reloaded.events[1].at_s == 0.125
        assert reloaded == tracer.finished()[0]


PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)


def parse_prometheus(text: str) -> dict[tuple[str, str], float]:
    """Minimal exposition-format parser: (name, labels) -> value."""
    out: dict[tuple[str, str], float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = PROM_SAMPLE.match(line)
        assert m is not None, f"unparseable sample line: {line!r}"
        out[(m.group("name"), m.group("labels") or "")] = float(m.group("value"))
    return out


def sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("toss_restore_bytes_total", "bytes").inc(
        4096.0, strategy="toss", tier="slow"
    )
    lat = reg.histogram("toss_restore_setup_seconds", "setup")
    for v in (0.004, 0.006, 0.02):
        lat.observe(v, strategy="toss")
    reg.gauge("toss_resource_inflation", "rho").set(1.25, resource="ssd")
    return reg


class TestPrometheus:
    def test_every_sample_line_parses(self):
        samples = parse_prometheus(prometheus_text(sample_registry()))
        assert samples[
            ("toss_restore_bytes_total", 'strategy="toss",tier="slow"')
        ] == 4096.0
        assert samples[("toss_resource_inflation", 'resource="ssd"')] == 1.25

    def test_histogram_series_complete_and_cumulative(self):
        text = prometheus_text(sample_registry())
        samples = parse_prometheus(text)
        buckets = [
            v
            for (name, labels), v in samples.items()
            if name == "toss_restore_setup_seconds_bucket"
        ]
        assert buckets == sorted(buckets)  # cumulative counts never drop
        assert samples[
            ("toss_restore_setup_seconds_count", 'strategy="toss"')
        ] == 3
        assert samples[
            ("toss_restore_setup_seconds_sum", 'strategy="toss"')
        ] == 0.03
        inf = [
            v
            for (name, labels), v in samples.items()
            if name == "toss_restore_setup_seconds_bucket" and 'le="+Inf"' in labels
        ]
        assert inf == [3]

    def test_derived_quantile_series(self):
        samples = parse_prometheus(prometheus_text(sample_registry()))
        for suffix in ("p50", "p95", "p99"):
            key = (f"toss_restore_setup_seconds_{suffix}", 'strategy="toss"')
            assert key in samples
            assert samples[key] > 0.0

    def test_help_and_type_lines(self):
        text = prometheus_text(sample_registry())
        assert "# TYPE toss_restore_bytes_total counter" in text
        assert "# TYPE toss_restore_setup_seconds histogram" in text
        assert "# TYPE toss_resource_inflation gauge" in text

    def test_deterministic(self):
        assert prometheus_text(sample_registry()) == prometheus_text(
            sample_registry()
        )

    def test_empty_registry_is_empty_text(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_values_are_escaped(self):
        # Exposition format: backslash, double-quote and newline must be
        # escaped inside quoted label values — a raw `"` would terminate
        # the value early and corrupt the whole sample line.
        reg = MetricsRegistry()
        reg.counter("toss_errors_total", "errors").inc(
            reason='input "IV"', path="C:\\snap", msg="line1\nline2"
        )
        text = prometheus_text(reg)
        assert r'reason="input \"IV\""' in text
        assert r'path="C:\\snap"' in text
        assert r'msg="line1\nline2"' in text
        assert "\n".join(
            line for line in text.splitlines() if "line2" in line
        ).count("\n") == 0  # the newline never splits the sample line
