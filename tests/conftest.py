"""Shared fixtures: small, fast function models and trace builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.functions.base import FunctionModel, InputSpec
from repro.trace.events import AccessEpoch, InvocationTrace
from repro.trace.synth import Band

pytest_plugins = ["pytester"]


@pytest.fixture(autouse=True)
def _no_leaked_fault_injector():
    """Fail any test that leaves a process-wide fault injector installed.

    ``repro.faults.install`` mutates process state; a test that forgets
    ``uninstall`` (or should have used the ``injected`` context manager)
    silently injects faults into every later test.  The guard fails the
    *leaking* test and cleans up so the rest of the session stays
    deterministic.
    """
    assert faults.get_default() is None, (
        "a fault injector is already installed at test start "
        "(leaked by earlier setup?)"
    )
    yield
    leaked = faults.get_default() is not None
    faults.uninstall()
    assert not leaked, (
        "test leaked an installed fault injector: call faults.uninstall() "
        "or use the faults.injected() context manager"
    )


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


def make_trace(
    n_pages: int = 4096,
    pages=(0, 1, 2, 100),
    counts=(50, 40, 30, 10),
    cpu_time_s: float = 0.01,
    n_epochs: int = 1,
    store_fraction: float = 0.0,
    random_fraction: float = 0.0,
) -> InvocationTrace:
    """A small hand-built trace."""
    epochs = tuple(
        AccessEpoch(
            cpu_time_s=cpu_time_s / n_epochs,
            pages=np.asarray(pages, dtype=np.int64),
            counts=np.asarray(counts, dtype=np.int64),
            store_fraction=store_fraction,
            random_fraction=random_fraction,
        )
        for _ in range(n_epochs)
    )
    return InvocationTrace(n_pages=n_pages, epochs=epochs, label="test")


@pytest.fixture
def tiny_function() -> FunctionModel:
    """A fast 128 MB function with a hot head and cold tail."""
    return FunctionModel(
        name="tiny",
        description="test function",
        guest_mb=128,
        input_type="N",
        inputs=(
            InputSpec("small", t_dram_s=0.002, stall_share=0.02,
                      ws_fraction=0.05, variability=0.02),
            InputSpec("mid", t_dram_s=0.005, stall_share=0.04,
                      ws_fraction=0.10, variability=0.02),
            InputSpec("large", t_dram_s=0.010, stall_share=0.06,
                      ws_fraction=0.15, variability=0.02),
            InputSpec("xl", t_dram_s=0.020, stall_share=0.08,
                      ws_fraction=0.20, variability=0.02),
        ),
        bands=(Band(0.10, 0.70), Band(0.90, 0.30)),
        n_epochs=3,
        store_fraction=0.2,
    )


@pytest.fixture
def memory_intensive_function() -> FunctionModel:
    """A fast function whose working set resists offloading."""
    return FunctionModel(
        name="intense",
        description="uniformly hot test function",
        guest_mb=128,
        input_type="N",
        inputs=(
            InputSpec("small", t_dram_s=0.004, stall_share=0.15,
                      ws_fraction=0.30, variability=0.02),
            InputSpec("mid", t_dram_s=0.008, stall_share=0.25,
                      ws_fraction=0.45, variability=0.02),
            InputSpec("large", t_dram_s=0.015, stall_share=0.35,
                      ws_fraction=0.60, variability=0.02),
            InputSpec("xl", t_dram_s=0.030, stall_share=0.45,
                      ws_fraction=0.75, variability=0.02),
        ),
        bands=(Band(0.5, 0.5), Band(0.5, 0.5)),
        n_epochs=3,
        store_fraction=0.05,
    )
