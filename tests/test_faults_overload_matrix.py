"""Chaos matrix: host faults x non-permissive overload policy, together.

The cluster layer and the per-host overload-resilience layer guard
different failure surfaces — hosts disappearing vs hosts drowning — and
a real incident exercises both at once.  This matrix crashes (or
partitions) hosts from a :class:`~repro.faults.plan.FaultPlan` while
every host runs a non-permissive :class:`OverloadConfig`, and asserts
the combined invariants: both degradation ladders actually move, the
replicated fleet holds its availability floor, and every request ends
with a typed outcome (served, host-shed, or a cluster
:class:`~repro.errors.ClusterError`) — nothing is silently lost.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterPlatform,
    FLEET_SUITE,
    steady_requests,
)
from repro.core.telemetry import EventKind, TelemetryLog
from repro.core.toss import TossConfig
from repro.faults.plan import FaultPlan, HostFaultSpec, TierFaultSpec
from repro.platform.overload import HealthState, OverloadConfig

SMALL_TOSS = TossConfig(convergence_window=3, min_profiling_invocations=3)

AVAILABILITY_FLOOR = 0.99

TIGHT_OVERLOAD = OverloadConfig(
    slo_factor=20.0,
    breaker_failures=3,
    breaker_cooldown_s=1.0,
    pressured_delay_s=0.010,
    degraded_delay_s=0.040,
    shedding_delay_s=0.120,
    delay_alpha=0.3,
    degraded_fault_rate=0.25,
)


def run_matrix_cell(plan, *, cores_per_host=2, n_requests=240):
    telemetry = TelemetryLog()
    cluster = ClusterPlatform(
        ClusterConfig(
            n_hosts=4, replication_factor=2, cores_per_host=cores_per_host
        ),
        toss_cfg=SMALL_TOSS,
        plan=plan,
        overload=TIGHT_OVERLOAD,
        telemetry=telemetry,
    )
    cluster.deploy_fleet(list(FLEET_SUITE))
    outcomes = cluster.serve(
        steady_requests(n_requests=n_requests, duration_s=8.0)
    )
    return cluster, telemetry, outcomes


def assert_fully_accounted(cluster, outcomes, n_requests):
    assert len(outcomes) == n_requests
    assert cluster.unaccounted() == 0
    for o in outcomes:
        assert o.served or o.host_shed or o.failed or (
            o.cluster_shed and o.shed_reason and o.error
        )


class TestChaosMatrix:
    def test_host_crash_under_tight_overload_holds_floor(self):
        plan = FaultPlan(
            hosts=(HostFaultSpec(host=0, crash_windows=((2.0, 6.0),)),)
        )
        cluster, telemetry, outcomes = run_matrix_cell(plan)
        assert cluster.availability() >= AVAILABILITY_FLOOR
        assert_fully_accounted(cluster, outcomes, 240)
        # The fleet ladder reacted to the lost host (one rung) and
        # recovered once it returned.
        moves = {(o, n) for _, o, n in cluster.fleet_ladder.transitions}
        assert (HealthState.HEALTHY, HealthState.PRESSURED) in moves
        assert cluster.fleet_ladder.state is HealthState.HEALTHY

    def test_crash_plus_tier_outage_moves_both_ladders(self):
        # Host 0 dies while every host's slow tier blinks out: the
        # cluster layer handles the former, each host's overload layer
        # absorbs the latter (fallback serving, breaker, ladder).
        plan = FaultPlan(
            hosts=(HostFaultSpec(host=0, crash_windows=((2.0, 6.0),)),),
            tier=TierFaultSpec(outage_windows=((2.5, 4.0),)),
        )
        cluster, telemetry, outcomes = run_matrix_cell(plan)
        assert cluster.availability() >= AVAILABILITY_FLOOR
        assert_fully_accounted(cluster, outcomes, 240)
        # Host-level ladders observed the outage failures.
        host_moves = telemetry.of_kind(EventKind.HEALTH_TRANSITION)
        assert host_moves, "no host degradation-ladder transitions"
        # Fleet ladder moved on the crashed host.
        assert cluster.fleet_ladder.transitions

    def test_partition_under_tight_overload_loses_nothing(self):
        # Disjoint windows: some replica of every function stays live.
        plan = FaultPlan(
            hosts=(
                HostFaultSpec(host=0, partition_windows=((2.0, 4.0),)),
                HostFaultSpec(host=1, partition_windows=((4.5, 6.0),)),
            )
        )
        cluster, telemetry, outcomes = run_matrix_cell(plan)
        assert cluster.total_kills() == 0
        assert cluster.availability() >= AVAILABILITY_FLOOR
        assert_fully_accounted(cluster, outcomes, 240)
        assert cluster.total_failovers > 0

    def test_unreplicated_cell_degrades_visibly_not_silently(self):
        # The negative cell of the matrix: rf=1 with a slow repair must
        # lose availability — but only through typed cluster sheds.
        plan = FaultPlan(
            hosts=(HostFaultSpec(host=0, crash_windows=((2.0, 6.0),)),)
        )
        telemetry = TelemetryLog()
        cluster = ClusterPlatform(
            ClusterConfig(
                n_hosts=4,
                replication_factor=1,
                cores_per_host=2,
                re_replication_delay_s=1.0,
            ),
            toss_cfg=SMALL_TOSS,
            plan=plan,
            overload=TIGHT_OVERLOAD,
            telemetry=telemetry,
        )
        cluster.deploy_fleet(list(FLEET_SUITE))
        outcomes = cluster.serve(
            steady_requests(n_requests=240, duration_s=8.0)
        )
        assert cluster.availability() < AVAILABILITY_FLOOR
        assert_fully_accounted(cluster, outcomes, 240)
        shed = [o for o in outcomes if o.cluster_shed]
        assert shed
        assert all("shed by the cluster" in o.error for o in shed)
