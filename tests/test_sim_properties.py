"""Property tests for the event kernel (:mod:`repro.sim`).

The kernel's contract is determinism: identical schedules replay
identically, simultaneous events fire FIFO in scheduling order, time
never runs backwards, and shared-resource tokens are conserved under any
interleaving of acquires and releases.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memsim.bandwidth import ContentionModel, TierDemand
from repro.memsim.storage import OPTANE_SSD_SPEC
from repro.memsim.tiers import DEFAULT_MEMORY_SYSTEM
from repro.sim import (
    Acquire,
    Delay,
    EventLoop,
    EventScheduler,
    Release,
    Resource,
    TimelineJob,
    TokenBucket,
)

DELAYS = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=40,
)
PRIORITIES = st.integers(min_value=0, max_value=3)


class TestDeterminism:
    @given(
        st.lists(st.tuples(DELAYS.map(lambda d: d[0]), PRIORITIES), min_size=1, max_size=40)
    )
    @settings(max_examples=50, deadline=None)
    def test_identical_schedules_replay_identically(self, spec):
        def trace(schedule):
            loop = EventLoop()
            order: list[int] = []
            for i, (delay, priority) in enumerate(schedule):
                loop.schedule(delay, lambda _n, i=i: order.append(i), priority=priority)
            loop.run()
            return order

        assert trace(spec) == trace(spec)

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_simultaneous_events_fire_fifo(self, n):
        loop = EventLoop()
        order: list[int] = []
        for i in range(n):
            loop.schedule(1.0, lambda _n, i=i: order.append(i))
        loop.run()
        assert order == list(range(n))

    def test_priority_bands_order_same_instant(self):
        loop = EventLoop()
        order: list[str] = []
        loop.schedule(1.0, lambda _n: order.append("arrival"), priority=2)
        loop.schedule(1.0, lambda _n: order.append("release"), priority=0)
        loop.schedule(1.0, lambda _n: order.append("emit"), priority=1)
        loop.run()
        assert order == ["release", "emit", "arrival"]

    @given(st.floats(max_value=-1e-12, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_negative_delays_rejected(self, delay):
        loop = EventLoop()
        with pytest.raises(ConfigError):
            loop.schedule(delay, lambda _n: None)

    def test_scheduling_in_the_past_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda _n: None)
        loop.run()
        with pytest.raises(ConfigError):
            loop.schedule_at(4.0, lambda _n: None)

    def test_time_is_monotone_across_dispatch(self):
        loop = EventLoop()
        seen: list[float] = []
        for d in (3.0, 1.0, 2.0, 1.0):
            loop.schedule(d, lambda _n: seen.append(loop.now))
        loop.run()
        assert seen == sorted(seen)


class TestResourceConservation:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.floats(min_value=0.1, max_value=4.0)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_tokens_conserved_under_any_interleaving(self, ops):
        loop = EventLoop()
        res = Resource("cores", 4.0, loop=loop)
        held: list[float] = []
        for is_acquire, amount in ops:
            if is_acquire:
                if res.try_acquire(amount):
                    held.append(amount)
            elif held:
                res.release(held.pop())
            assert res.in_use + res.available == pytest.approx(res.capacity)
            assert 0.0 <= res.in_use <= res.capacity + 1e-9
        for amount in held:
            res.release(amount)
        assert res.in_use == pytest.approx(0.0)

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_fifo_grants_under_contention(self, n):
        loop = EventLoop()
        res = Resource("cores", 1.0, loop=loop)
        order: list[int] = []

        def worker(i):
            yield Acquire(res)
            order.append(i)
            yield Delay(1.0)
            yield Release(res)

        for i in range(n):
            loop.spawn(worker(i), name=f"w{i}")
        loop.run()
        assert order == list(range(n))
        assert res.in_use == pytest.approx(0.0)

    def test_over_release_rejected(self):
        loop = EventLoop()
        res = Resource("cores", 2.0, loop=loop)
        assert res.try_acquire(1.0)
        with pytest.raises(ConfigError):
            res.release(1.5)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=30)
    )
    @settings(max_examples=50, deadline=None)
    def test_bucket_accounts_every_token(self, amounts):
        loop = EventLoop()
        bucket = TokenBucket("ssd", 10.0, loop=loop)
        for amount in amounts:
            wait = bucket.consume(amount)
            assert wait >= 0.0
            loop.schedule(wait, lambda _n: None)
            loop.run()
        assert bucket.consumed_total == pytest.approx(sum(amounts))
        # Every debt was waited out, so the backlog is clear.
        assert bucket.backlog_s == pytest.approx(0.0, abs=1e-9)


class TestEquilibriumIdentity:
    """The kernel's synchronized batch IS the analytic model."""

    def model(self):
        return ContentionModel(DEFAULT_MEMORY_SYSTEM, OPTANE_SSD_SPEC)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=2.0),
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=5e4),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_synchronized_equals_analytic_bytes(self, rows):
        model = self.model()
        demands = [
            TierDemand(cpu_time_s=cpu, ssd_stall_s=stall, ssd_ops=ops)
            for cpu, stall, ops in rows
        ]
        engine = EventScheduler(model)
        times, inflation = engine.run_synchronized(demands)
        assert times == model.contended_times(demands)
        assert inflation == model.inflation_factors(demands)

    def test_single_job_timeline_matches_single_demand_equilibrium(self):
        model = self.model()
        demand = TierDemand(cpu_time_s=0.5, ssd_stall_s=0.2, ssd_ops=1e4)
        engine = EventScheduler(model)
        result = engine.run_timeline([TimelineJob(0.0, demand, label="solo")])
        [analytic] = model.contended_times([demand])
        # The timeline's quasi-static rates are pinned at the nominal time
        # while the analytic fixed point iterates them at the contended
        # time, so a self-inflating job agrees closely, not bit-exactly.
        assert result.jobs[0].contended_time_s == pytest.approx(analytic, rel=1e-3)

    def test_staggered_jobs_contend_only_while_overlapping(self):
        model = self.model()
        heavy = TierDemand(cpu_time_s=0.1, ssd_stall_s=0.4, ssd_ops=2.4e5)
        engine = EventScheduler(model)
        overlapped = engine.run_timeline(
            [TimelineJob(0.0, heavy, label=f"j{i}") for i in range(4)]
        )
        spread = engine.run_timeline(
            [TimelineJob(10.0 * i, heavy, label=f"j{i}") for i in range(4)]
        )
        mean_overlapped = sum(j.contended_time_s for j in overlapped.jobs) / 4
        mean_spread = sum(j.contended_time_s for j in spread.jobs) / 4
        assert mean_overlapped > mean_spread * 1.05
