"""Chaos tests for the TOSS controller: graceful degradation under faults."""

from __future__ import annotations

import pytest

from repro.core.telemetry import EventKind, TelemetryLog
from repro.core.toss import Phase, TossConfig, TossController
from repro.faults import (
    FaultInjector,
    FaultPlan,
    ProfilerFaultSpec,
    SnapshotFaultSpec,
    StorageFaultSpec,
    TierFaultSpec,
)


def controller(function, plan=None, **cfg_kwargs):
    cfg = TossConfig(
        convergence_window=cfg_kwargs.pop("convergence_window", 3),
        min_profiling_invocations=cfg_kwargs.pop("min_profiling_invocations", 3),
        **cfg_kwargs,
    )
    telemetry = TelemetryLog()
    ctl = TossController(
        function,
        cfg=cfg,
        telemetry=telemetry,
        faults=FaultInjector(plan) if plan is not None else None,
    )
    return ctl, telemetry


def drive_to_tiered(ctl, input_index=3, max_invocations=60):
    outcomes = []
    for _ in range(max_invocations):
        outcomes.append(ctl.invoke(input_index))
        if ctl.phase is Phase.TIERED:
            break
    assert ctl.phase is Phase.TIERED, "controller failed to converge"
    return outcomes


class TestCorruptionDegradation:
    def test_corruption_falls_back_and_degrades_immediately(self, tiny_function):
        plan = FaultPlan(snapshot=SnapshotFaultSpec(corruption_rate=1.0))
        ctl, telemetry = controller(tiny_function, plan)
        drive_to_tiered(ctl)
        out = ctl.invoke(3)
        # Served via the lazy fallback: all-DRAM, one absorbed failure.
        assert out.phase is Phase.TIERED
        assert out.degraded
        assert out.failures == 1
        assert out.slow_fraction == 0.0
        assert out.exec_time_s > 0.0
        # Corruption is unrecoverable damage: degrade on the first hit,
        # regardless of degrade_after_failures.
        assert ctl.phase is Phase.PROFILING
        assert ctl.tiered_snapshot is None
        assert ctl.restore_failures == 1
        fallbacks = telemetry.of_kind(EventKind.FALLBACK_RESTORE)
        assert len(fallbacks) == 1
        assert fallbacks[0].detail["error"] == "SnapshotCorruptionError"
        degradations = telemetry.of_kind(EventKind.PHASE_DEGRADED)
        assert len(degradations) == 1
        assert degradations[0].detail["transition"] == "tiered->profiling"
        assert degradations[0].detail["reason"] == "snapshot-corruption"
        # The fallback source (single-tier file) survived the corruption.
        ctl.single_snapshot.verify()

    def test_degraded_function_regrows_a_tiered_snapshot(self, tiny_function):
        plan = FaultPlan(snapshot=SnapshotFaultSpec(corruption_rate=1.0))
        ctl, telemetry = controller(tiny_function, plan)
        drive_to_tiered(ctl)
        ctl.invoke(3)  # corruption -> back to profiling
        assert ctl.phase is Phase.PROFILING
        # Faults clear; profiling re-runs and regenerates the snapshot
        # from the intact single-tier file.
        ctl.faults = FaultInjector()
        drive_to_tiered(ctl)
        assert ctl.tiered_snapshot is not None
        ctl.tiered_snapshot.verify()
        assert ctl.slow_fraction > 0.0


class TestTransientFailureDegradation:
    def test_degrades_after_consecutive_failures(self, tiny_function):
        plan = FaultPlan(tier=TierFaultSpec(outage_windows=((0.0, 9e9),)))
        ctl, telemetry = controller(
            tiny_function, plan, degrade_after_failures=2
        )
        drive_to_tiered(ctl)
        first = ctl.invoke(3)
        assert first.failures == 1 and first.degraded
        assert ctl.phase is Phase.TIERED  # one failure tolerated
        second = ctl.invoke(3)
        assert second.failures == 1
        assert ctl.phase is Phase.PROFILING
        assert ctl.tiered_snapshot is None
        degradations = telemetry.of_kind(EventKind.PHASE_DEGRADED)
        assert len(degradations) == 1
        assert degradations[0].detail["reason"] == "repeated-failures"
        assert degradations[0].detail["failures"] == 2
        assert ctl.restore_failures == 2

    def test_success_resets_the_consecutive_counter(self, tiny_function):
        # Outage for t in [0, 10); the controller's injector clock is
        # advanced manually the way the platform would.
        plan = FaultPlan(tier=TierFaultSpec(outage_windows=((0.0, 10.0),)))
        ctl, telemetry = controller(
            tiny_function, plan, degrade_after_failures=2
        )
        drive_to_tiered(ctl)
        ctl.faults.advance_to(5.0)
        assert ctl.invoke(3).failures == 1  # inside the outage
        ctl.faults.advance_to(15.0)
        assert ctl.invoke(3).failures == 0  # outage over: clean restore
        assert ctl.phase is Phase.TIERED
        assert telemetry.of_kind(EventKind.PHASE_DEGRADED) == []


class TestRetriesAndBackpressure:
    def test_restore_retries_recover_and_are_reported(self, tiny_function):
        plan = FaultPlan(
            ssd=StorageFaultSpec(read_error_rate=0.9, retry_success_rate=1.0)
        )
        ctl, telemetry = controller(tiny_function, plan)
        drive_to_tiered(ctl)
        out = ctl.invoke(3)
        assert out.retries > 0
        assert out.failures == 0
        assert not out.degraded  # recovered in place, still tiered-served
        assert out.slow_fraction == ctl.slow_fraction > 0.0
        assert ctl.phase is Phase.TIERED
        retried = telemetry.of_kind(EventKind.RESTORE_RETRIED)
        assert len(retried) == 1
        assert retried[0].detail["retries"] == out.retries

    def test_backpressure_slows_execution_and_marks_degraded(self, tiny_function):
        # The window opens only after profiling has converged (the
        # injector clock sits at 0 until advanced), so both controllers
        # analyse and place identically; only the tiered serving differs.
        plan = FaultPlan(
            tier=TierFaultSpec(backpressure_windows=((100.0, 9e9, 8.0),))
        )
        faulted, telemetry = controller(tiny_function, plan)
        clean, _ = controller(tiny_function)
        drive_to_tiered(faulted)
        drive_to_tiered(clean)
        faulted.faults.advance_to(100.0)
        out_f = faulted.invoke(3)
        out_c = clean.invoke(3)
        assert out_f.degraded and not out_c.degraded
        assert out_f.failures == 0  # still served from the slow tier
        assert out_f.slow_fraction == out_c.slow_fraction > 0.0
        # Slow-tier accesses pay the multiplied latency end to end.
        assert out_f.exec_time_s > out_c.exec_time_s
        events = telemetry.of_kind(EventKind.TIER_BACKPRESSURE)
        assert len(events) == 1
        assert events[0].detail["multiplier"] == 8.0


class TestProfilerSampleLoss:
    def test_sample_loss_extends_profiling(self, tiny_function):
        plan = FaultPlan(profiler=ProfilerFaultSpec(sample_loss_rate=1.0))
        ctl, telemetry = controller(tiny_function, plan)
        for _ in range(10):
            ctl.invoke(3)
        # Every DAMON file was lost: the pattern never folds anything in,
        # so profiling cannot converge.
        assert ctl.phase is Phase.PROFILING
        assert ctl.pattern.stable_invocations == 0
        extended = [
            e
            for e in telemetry.of_kind(EventKind.PHASE_DEGRADED)
            if e.detail["transition"] == "profiling-extended"
        ]
        assert len(extended) == 9  # every profiling invocation after initial
        assert all(
            e.detail["reason"] == "profiler-sample-loss" for e in extended
        )
        # Loss clears: profiling completes from where it left off.
        ctl.faults = FaultInjector()
        drive_to_tiered(ctl)

    def test_partial_sample_loss_still_converges(self, tiny_function):
        plan = FaultPlan(
            profiler=ProfilerFaultSpec(sample_loss_rate=0.3), seed=5
        )
        lossy, _ = controller(tiny_function, plan)
        clean, _ = controller(tiny_function)
        n_lossy = len(drive_to_tiered(lossy))
        n_clean = len(drive_to_tiered(clean))
        assert n_lossy >= n_clean
        assert lossy.tiered_snapshot is not None


class TestZeroPlanController:
    def test_zero_injector_is_invisible(self, tiny_function):
        faulted, telemetry = controller(
            tiny_function, FaultPlan()
        )
        clean, _ = controller(tiny_function)
        for _ in range(12):
            out_f = faulted.invoke(3)
            out_c = clean.invoke(3)
            assert out_f == out_c
        assert faulted.phase is clean.phase
        kinds = {e.kind for e in telemetry.events}
        assert EventKind.PHASE_DEGRADED not in kinds
        assert EventKind.FALLBACK_RESTORE not in kinds


def test_degrade_after_failures_validated():
    with pytest.raises(Exception) as info:
        TossConfig(degrade_after_failures=0)
    from repro.errors import AnalysisError

    assert isinstance(info.value, AnalysisError)
