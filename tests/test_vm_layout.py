"""Tests for the tiered memory-layout file."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config
from repro.errors import LayoutError
from repro.memsim.tiers import Tier
from repro.vm.layout import LayoutEntry, MemoryLayout


def placement_of(*spans):
    """Build a dense placement from (tier, n_pages) spans."""
    return np.concatenate(
        [np.full(n, int(t), dtype=np.uint8) for t, n in spans]
    )


class TestLayoutEntry:
    def test_properties(self):
        e = LayoutEntry(tier=0, file_offset_page=10, guest_start_page=20, n_pages=5)
        assert e.guest_end_page == 25
        assert e.size_bytes == 5 * config.PAGE_SIZE

    def test_validation(self):
        # Any non-negative tier id is a legal chain position now; only
        # negatives (and non-ints) are malformed.
        with pytest.raises(LayoutError):
            LayoutEntry(tier=-1, file_offset_page=0, guest_start_page=0, n_pages=1)
        with pytest.raises(LayoutError):
            LayoutEntry(tier=0, file_offset_page=-1, guest_start_page=0, n_pages=1)
        with pytest.raises(LayoutError):
            LayoutEntry(tier=0, file_offset_page=0, guest_start_page=0, n_pages=0)


class TestFromPlacement:
    def test_merges_same_tier_runs(self):
        placement = placement_of((Tier.FAST, 10), (Tier.SLOW, 20), (Tier.FAST, 5))
        layout = MemoryLayout.from_placement(placement)
        assert layout.n_mappings == 3
        assert layout.pages_in_tier(Tier.FAST) == 15
        assert layout.pages_in_tier(Tier.SLOW) == 20
        assert layout.slow_fraction == pytest.approx(20 / 35)

    def test_file_offsets_serial_per_tier(self):
        placement = placement_of(
            (Tier.FAST, 4), (Tier.SLOW, 6), (Tier.FAST, 2), (Tier.SLOW, 3)
        )
        layout = MemoryLayout.from_placement(placement)
        fast = [e for e in layout.entries if e.tier == int(Tier.FAST)]
        slow = [e for e in layout.entries if e.tier == int(Tier.SLOW)]
        assert [e.file_offset_page for e in fast] == [0, 4]
        assert [e.file_offset_page for e in slow] == [0, 6]
        assert layout.file_pages(Tier.FAST) == 6
        assert layout.file_pages(Tier.SLOW) == 9

    def test_placement_round_trip(self):
        placement = placement_of((Tier.SLOW, 7), (Tier.FAST, 1), (Tier.SLOW, 8))
        layout = MemoryLayout.from_placement(placement)
        np.testing.assert_array_equal(layout.placement(), placement)

    def test_single_tier_is_one_mapping(self):
        layout = MemoryLayout.from_placement(placement_of((Tier.SLOW, 100)))
        assert layout.n_mappings == 1

    def test_empty_rejected(self):
        with pytest.raises(LayoutError):
            MemoryLayout.from_placement(np.array([], dtype=np.uint8))

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([0, 1]), st.integers(min_value=1, max_value=50)
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, spans):
        placement = np.concatenate(
            [np.full(n, t, dtype=np.uint8) for t, n in spans]
        )
        layout = MemoryLayout.from_placement(placement)
        np.testing.assert_array_equal(layout.placement(), placement)
        # Mappings never exceed the number of spans (merging can only help).
        assert layout.n_mappings <= len(spans)
        # Tier page totals are conserved.
        assert layout.pages_in_tier(Tier.SLOW) == int(placement.sum())


class TestSerialization:
    def test_json_round_trip(self):
        placement = placement_of((Tier.FAST, 3), (Tier.SLOW, 9), (Tier.FAST, 4))
        layout = MemoryLayout.from_placement(placement)
        restored = MemoryLayout.from_json(layout.to_json())
        assert restored == layout
        np.testing.assert_array_equal(restored.placement(), placement)

    def test_malformed_json_rejected(self):
        with pytest.raises(LayoutError):
            MemoryLayout.from_json("{not json")
        with pytest.raises(LayoutError):
            MemoryLayout.from_json('{"entries": []}')

    def test_parse_time_scales_with_mappings(self):
        small = MemoryLayout.from_placement(placement_of((Tier.FAST, 10)))
        big = MemoryLayout.from_placement(
            placement_of(*[(Tier.FAST, 1), (Tier.SLOW, 1)] * 20)
        )
        assert big.parse_time_s() > small.parse_time_s()


class TestValidation:
    def test_gap_rejected(self):
        with pytest.raises(LayoutError):
            MemoryLayout(
                10,
                [
                    LayoutEntry(0, 0, 0, 4),
                    LayoutEntry(0, 4, 6, 4),  # pages 4-5 uncovered
                ],
            )

    def test_overlap_rejected(self):
        with pytest.raises(LayoutError):
            MemoryLayout(
                10,
                [LayoutEntry(0, 0, 0, 6), LayoutEntry(0, 6, 4, 6)],
            )

    def test_file_offset_gap_rejected(self):
        with pytest.raises(LayoutError):
            MemoryLayout(
                10,
                [
                    LayoutEntry(0, 0, 0, 5),
                    LayoutEntry(0, 7, 5, 5),  # file offset should be 5
                ],
            )
