"""Deterministic telemetry ordering on the event-driven serve loop.

Shed, breaker-transition and health-transition events are *decided*
eagerly (the next admission check must see the new state) but *emitted*
as events at their simulated timestamps, so the telemetry log reads like
a timeline: ``at_s`` never decreases, no matter how far ahead of the
arrival stream a breaker observed its transition.
"""

from __future__ import annotations

from repro.core.telemetry import EventKind, TelemetryLog
from repro.core.toss import TossConfig
from repro.platform.overload import OverloadConfig
from repro.platform.server import ServerlessPlatform

SMALL_TOSS = TossConfig(convergence_window=3, min_profiling_invocations=3)

ORDERED_KINDS = (
    EventKind.REQUEST_SHED,
    EventKind.BREAKER_TRANSITION,
    EventKind.HEALTH_TRANSITION,
)


def overloaded_run(tiny_function):
    """A stream that sheds, trips breakers and climbs the ladder."""
    telemetry = TelemetryLog()
    platform = ServerlessPlatform(
        n_cores=1,
        toss_cfg=SMALL_TOSS,
        telemetry=telemetry,
        overload=OverloadConfig(
            max_queue_depth=2,
            max_queue_delay_s=0.02,
            slo_factor=4.0,
            pressured_delay_s=0.010,
            degraded_delay_s=0.040,
            shedding_delay_s=0.120,
            delay_alpha=0.3,
        ),
    )
    platform.deploy(tiny_function)
    warmup = [(0.001 * i, "tiny", i % 4) for i in range(12)]
    burst = [
        (0.5 + 0.0005 * i, "tiny", i % 4, "batch" if i % 2 else "latency")
        for i in range(40)
    ]
    recovery = [(5.0 + 0.5 * i, "tiny", 0) for i in range(4)]
    platform.serve(warmup + burst + recovery)
    return platform, telemetry


class TestTelemetryOrdering:
    def test_ordered_kinds_carry_timestamps(self, tiny_function):
        _, telemetry = overloaded_run(tiny_function)
        stamped = [e for e in telemetry.events if e.kind in ORDERED_KINDS]
        assert stamped, "scenario produced no overload telemetry"
        assert {e.kind for e in stamped} >= {
            EventKind.REQUEST_SHED,
            EventKind.HEALTH_TRANSITION,
        }
        assert all(e.at_s is not None for e in stamped)
        # The deprecated detail mirror is gone for good.
        assert all("at_s" not in e.detail for e in telemetry.events)

    def test_emission_order_is_nondecreasing_simulated_time(self, tiny_function):
        _, telemetry = overloaded_run(tiny_function)
        stamps = [
            e.at_s for e in telemetry.events if e.kind in ORDERED_KINDS
        ]
        assert stamps == sorted(stamps)

    def test_ordering_is_deterministic_across_runs(self, tiny_function):
        _, first = overloaded_run(tiny_function)
        _, second = overloaded_run(tiny_function)
        key = [(e.kind, e.function, tuple(sorted(e.detail.items()))) for e in first.events]
        assert key == [
            (e.kind, e.function, tuple(sorted(e.detail.items())))
            for e in second.events
        ]
