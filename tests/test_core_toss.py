"""Tests for the TOSS controller lifecycle."""

from __future__ import annotations

import pytest

from repro import config
from repro.core.toss import InvocationOutcome, Phase, TossConfig, TossController
from repro.errors import AnalysisError


def controller(function, **cfg_kwargs) -> TossController:
    cfg = TossConfig(
        convergence_window=cfg_kwargs.pop("convergence_window", 3),
        min_profiling_invocations=cfg_kwargs.pop("min_profiling_invocations", 3),
        **cfg_kwargs,
    )
    return TossController(function, cfg=cfg)


def drive_to_tiered(ctl, input_index=3, max_invocations=60):
    outcomes = []
    for _ in range(max_invocations):
        out = ctl.invoke(input_index)
        outcomes.append(out)
        if ctl.phase is Phase.TIERED:
            break
    assert ctl.phase is Phase.TIERED, "controller failed to converge"
    return outcomes


class TestLifecycle:
    def test_phases_in_order(self, tiny_function):
        ctl = controller(tiny_function)
        outcomes = drive_to_tiered(ctl)
        phases = [o.phase for o in outcomes]
        assert phases[0] is Phase.INITIAL
        assert all(p is Phase.PROFILING for p in phases[1:])
        assert outcomes[-1].analysis_generated

    def test_snapshot_artifacts_present(self, tiny_function):
        ctl = controller(tiny_function)
        drive_to_tiered(ctl)
        assert ctl.single_snapshot is not None
        assert ctl.tiered_snapshot is not None
        assert ctl.analysis is not None
        assert 0.0 < ctl.slow_fraction <= 1.0

    def test_tiered_invocations_use_tiered_snapshot(self, tiny_function):
        ctl = controller(tiny_function)
        drive_to_tiered(ctl)
        out = ctl.invoke(3)
        assert out.phase is Phase.TIERED
        assert out.slow_fraction == ctl.slow_fraction
        # TOSS setup: constant, small, includes the tiered-restore base.
        assert out.setup_time_s >= config.VM_STATE_LOAD_S + config.TIERED_RESTORE_BASE_S
        assert out.setup_time_s < 0.02

    def test_profiling_carries_damon_overhead(self, tiny_function):
        """Profiling-phase invocations run ~3 % slower (Section VI-A)."""
        ctl = controller(tiny_function)
        first = ctl.invoke(3)          # initial, no DAMON
        prof = ctl.invoke(3)           # profiling, DAMON attached
        # Same input; profiling pays restore faults + DAMON overhead, so
        # it must be slower than the warm initial execution.
        assert prof.exec_time_s > first.exec_time_s * (1 + config.DAMON_OVERHEAD / 2)

    def test_minimum_profiling_respected(self, tiny_function):
        ctl = controller(tiny_function, min_profiling_invocations=6)
        for _ in range(4):
            ctl.invoke(3)
        assert ctl.phase is Phase.PROFILING

    def test_reprofiling_threshold_must_be_sane(self):
        with pytest.raises(AnalysisError):
            TossConfig(min_profiling_invocations=1)

    def test_total_time_property(self):
        out = InvocationOutcome(
            phase=Phase.TIERED,
            input_index=0,
            seed=0,
            setup_time_s=0.01,
            exec_time_s=0.5,
            slow_fraction=0.9,
        )
        assert out.total_time_s == pytest.approx(0.51)


class TestBiggestInputSelection:
    def test_biggest_input_drives_bin_profiling(self, tiny_function):
        """Profiling with mixed inputs uses the longest for analysis."""
        ctl = controller(tiny_function)
        ctl.invoke(0)
        for _ in range(40):
            ctl.invoke(3)
            if ctl.phase is Phase.TIERED:
                break
        assert ctl.phase is Phase.TIERED
        assert ctl._biggest_input == 3


class TestReprofilingLoop:
    def test_longer_inputs_trigger_reprofiling(self, tiny_function):
        """After tiering on small inputs, a stream of much longer
        invocations re-enters the profiling phase (Section V-E)."""
        ctl = controller(tiny_function, reprofile_bound=0.001)
        # Converge while only ever seeing the smallest input.
        for _ in range(60):
            ctl.invoke(0)
            if ctl.phase is Phase.TIERED:
                break
        assert ctl.phase is Phase.TIERED
        cycles_before = ctl.profiling_cycles
        # Hammer with the largest input: latencies exceed the profiled LRI.
        for _ in range(200):
            ctl.invoke(3)
            if ctl.phase is Phase.PROFILING:
                break
        assert ctl.phase is Phase.PROFILING
        # And it converges again into a fresh tiered snapshot.
        for _ in range(60):
            ctl.invoke(3)
            if ctl.phase is Phase.TIERED:
                break
        assert ctl.phase is Phase.TIERED
        assert ctl.profiling_cycles == cycles_before + 1

    def test_stable_workload_does_not_reprofile(self, tiny_function):
        ctl = controller(tiny_function)
        drive_to_tiered(ctl)
        for _ in range(30):
            out = ctl.invoke(3)
            assert out.phase is Phase.TIERED


class TestDeterminism:
    def test_same_config_same_outcome(self, tiny_function):
        a = controller(tiny_function)
        b = controller(tiny_function)
        drive_to_tiered(a)
        drive_to_tiered(b)
        assert a.slow_fraction == b.slow_fraction
        assert a.analysis.cost == b.analysis.cost
