"""Tests for controller telemetry."""

from __future__ import annotations

import pytest

from repro.core.telemetry import EventKind, TelemetryEvent, TelemetryLog
from repro.core.toss import Phase, TossConfig, TossController


class TestTelemetryLog:
    def test_emit_and_query(self):
        log = TelemetryLog()
        log.emit(TelemetryEvent(EventKind.INITIAL_EXECUTION, "f", 1))
        log.emit(TelemetryEvent(EventKind.TIERED_INVOCATION, "f", 2))
        log.emit(TelemetryEvent(EventKind.TIERED_INVOCATION, "f", 3))
        assert log.count(EventKind.TIERED_INVOCATION) == 2
        assert log.last(EventKind.TIERED_INVOCATION).invocation == 3
        assert log.last(EventKind.REPROFILE_TRIGGERED) is None

    def test_subscribers_called(self):
        log = TelemetryLog()
        seen = []
        log.subscribe(seen.append)
        event = TelemetryEvent(EventKind.PATTERN_CONVERGED, "f", 5)
        log.emit(event)
        assert seen == [event]

    def test_raising_subscriber_is_isolated(self):
        """A subscriber that throws must not lose the event or starve
        later subscribers; the error is parked in ``subscriber_errors``."""
        log = TelemetryLog()
        seen = []

        def bad(event):
            raise RuntimeError("observer bug")

        log.subscribe(bad)
        log.subscribe(seen.append)
        event = TelemetryEvent(EventKind.PHASE_DEGRADED, "f", 1)
        log.emit(event)
        # The event was recorded and the healthy subscriber still ran.
        assert log.events == [event]
        assert seen == [event]
        # The failure is observable, not swallowed silently.
        assert len(log.subscriber_errors) == 1
        failed_event, exc = log.subscriber_errors[0]
        assert failed_event is event
        assert isinstance(exc, RuntimeError)

    def test_of_kind_preserves_emission_order(self):
        log = TelemetryLog()
        for i in (3, 1, 2):
            log.emit(TelemetryEvent(EventKind.RESTORE_RETRIED, "f", i))
            log.emit(TelemetryEvent(EventKind.TIERED_INVOCATION, "f", i))
        retried = log.of_kind(EventKind.RESTORE_RETRIED)
        # Emission order, not invocation order, and only the asked kind.
        assert [e.invocation for e in retried] == [3, 1, 2]
        assert all(e.kind is EventKind.RESTORE_RETRIED for e in retried)
        assert log.of_kind(EventKind.FALLBACK_RESTORE) == []

    def test_timeline_renders(self):
        log = TelemetryLog()
        log.emit(
            TelemetryEvent(
                EventKind.SNAPSHOT_GENERATED, "f", 9, {"cost": 0.5}
            )
        )
        line = log.timeline()[0]
        assert "snapshot-generated" in line and "0.5" in line

    def test_timeline_details_are_key_sorted(self):
        log = TelemetryLog()
        log.emit(
            TelemetryEvent(
                EventKind.REQUEST_SHED, "f", 1, {"zeta": 1, "alpha": 2}
            )
        )
        line = log.timeline()[0]
        assert line.index("alpha") < line.index("zeta")

    def test_subscriber_error_ledger_is_bounded(self):
        log = TelemetryLog(max_subscriber_errors=3)

        def bad(event):
            raise RuntimeError("always")

        log.subscribe(bad)
        for i in range(10):
            log.emit(TelemetryEvent(EventKind.TIERED_INVOCATION, "f", i))
        assert len(log.subscriber_errors) == 3
        assert log.dropped_subscriber_errors == 7
        # The oldest failures are the ones kept.
        assert [e.invocation for e, _ in log.subscriber_errors] == [0, 1, 2]

    def test_bounded_errors_never_block_delivery(self):
        log = TelemetryLog(max_subscriber_errors=1)
        seen = []

        def bad(event):
            raise RuntimeError("always")

        log.subscribe(bad)
        log.subscribe(seen.append)
        for i in range(5):
            log.emit(TelemetryEvent(EventKind.TIERED_INVOCATION, "f", i))
        assert len(seen) == 5
        assert len(log.events) == 5


class TestEventTimestampField:
    def test_field_carries_timestamp(self):
        event = TelemetryEvent(EventKind.BREAKER_TRANSITION, "f", 1, at_s=4.25)
        assert event.at_s == 4.25
        # The transition-release detail mirror is gone for good.
        assert "at_s" not in event.detail

    def test_no_timestamp_stays_none(self):
        event = TelemetryEvent(EventKind.TIERED_INVOCATION, "f", 1)
        assert event.at_s is None
        assert "at_s" not in event.detail

    def test_timestamp_in_detail_is_rejected(self):
        # Stragglers still emitting through detail fail loudly instead of
        # silently losing their timestamps.
        with pytest.raises(ValueError, match="at_s"):
            TelemetryEvent(
                EventKind.REQUEST_SHED, "f", 1, {"at_s": 2.5, "reason": "x"}
            )


class TestControllerIntegration:
    def test_lifecycle_events_emitted(self, tiny_function):
        log = TelemetryLog()
        ctl = TossController(
            tiny_function,
            cfg=TossConfig(convergence_window=3, min_profiling_invocations=3),
            telemetry=log,
        )
        for _ in range(40):
            ctl.invoke(3)
            if ctl.phase is Phase.TIERED:
                break
        ctl.invoke(3)
        assert log.count(EventKind.INITIAL_EXECUTION) == 1
        assert log.count(EventKind.PROFILING_INVOCATION) >= 3
        assert log.count(EventKind.PATTERN_CONVERGED) == 1
        assert log.count(EventKind.SNAPSHOT_GENERATED) == 1
        assert log.count(EventKind.TIERED_INVOCATION) >= 1
        detail = log.last(EventKind.SNAPSHOT_GENERATED).detail
        assert 0.0 < detail["slow_fraction"] <= 1.0
        assert detail["cost"] < 1.0

    def test_reprofile_event(self, tiny_function):
        log = TelemetryLog()
        ctl = TossController(
            tiny_function,
            cfg=TossConfig(
                convergence_window=3,
                min_profiling_invocations=3,
                reprofile_bound=0.001,
            ),
            telemetry=log,
        )
        for _ in range(60):
            ctl.invoke(0)
            if ctl.phase is Phase.TIERED:
                break
        for _ in range(300):
            ctl.invoke(3)
            if ctl.phase is Phase.PROFILING:
                break
        assert log.count(EventKind.REPROFILE_TRIGGERED) == 1

    def test_no_telemetry_no_overhead(self, tiny_function):
        ctl = TossController(
            tiny_function,
            cfg=TossConfig(convergence_window=3, min_profiling_invocations=3),
        )
        out = ctl.invoke(0)
        assert out.phase is Phase.INITIAL  # just runs without a log
