"""Tests for the unified access-pattern file."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProfilingError
from repro.profiling.damon import DamonSnapshot
from repro.profiling.unified import UnifiedAccessPattern
from repro.regions import Region, validate_partition


def snap(n_pages, spans):
    """Build a DamonSnapshot from (start, n, value) spans + zero filler."""
    regions = []
    cursor = 0
    for start, n, value in spans:
        if start > cursor:
            regions.append(Region(cursor, start - cursor, 0.0))
        regions.append(Region(start, n, value))
        cursor = start + n
    if cursor < n_pages:
        regions.append(Region(cursor, n_pages - cursor, 0.0))
    return DamonSnapshot(n_pages=n_pages, regions=tuple(regions), samples=1000)


def pattern(n_pages=1024, window=3, **kwargs) -> UnifiedAccessPattern:
    return UnifiedAccessPattern(
        n_pages, convergence_window=window, **kwargs
    )


class TestUpdate:
    def test_first_update_counts_as_change(self):
        p = pattern()
        assert p.update(snap(1024, [(0, 100, 50.0)])) is True
        assert p.invocations == 1

    def test_identical_updates_stabilise(self):
        p = pattern(window=3)
        s = snap(1024, [(0, 100, 50.0)])
        p.update(s)
        for _ in range(3):
            assert p.update(s) is False
        assert p.converged

    def test_new_pattern_resets_stability(self):
        p = pattern(window=3)
        s1 = snap(1024, [(0, 100, 50.0)])
        for _ in range(3):
            p.update(s1)
        p.update(snap(1024, [(0, 500, 900.0)]))
        assert p.stable_invocations == 0
        assert not p.converged

    def test_stability_tolerance_ignores_sliver_churn(self):
        p = pattern(window=2, stability_tolerance=0.05)
        p.update(snap(1024, [(0, 100, 50.0)]))
        # 2% of pages change class: within the 5% tolerance.
        p.update(snap(1024, [(0, 120, 50.0)]))
        p.update(snap(1024, [(0, 120, 50.0)]))
        assert p.converged

    def test_size_mismatch_rejected(self):
        with pytest.raises(ProfilingError):
            pattern(1024).update(snap(512, [(0, 10, 5.0)]))


class TestAggregation:
    def test_max_is_monotone(self):
        p = pattern()
        p.update(snap(1024, [(0, 100, 50.0)]))
        high = p.page_max[:100].copy()
        p.update(snap(1024, [(0, 100, 10.0)]))
        np.testing.assert_array_equal(p.page_max[:100], high)

    def test_mean_decays_contamination(self):
        p = pattern(noise_floor=4.0)
        # One coarse-smeared observation, then clean zero observations.
        p.update(snap(1024, [(0, 1024, 6.0)]))
        for _ in range(9):
            p.update(snap(1024, [(0, 64, 6.0)]))
        # Tail mean is 0.6 < noise floor -> classified zero.
        assert not p.observed_mask()[512:].any()
        assert p.observed_mask()[:64].all()

    def test_zero_fraction(self):
        p = pattern()
        p.update(snap(1024, [(0, 256, 100.0)]))
        assert p.zero_fraction() == pytest.approx(0.75)

    def test_queries_require_updates(self):
        with pytest.raises(ProfilingError):
            pattern().page_values()
        with pytest.raises(ProfilingError):
            pattern().regions()


class TestRegions:
    def test_regions_partition_guest(self):
        p = pattern()
        p.update(snap(1024, [(0, 100, 200.0), (500, 100, 30.0)]))
        regions = p.regions()
        validate_partition(regions, 1024)

    def test_zero_regions_have_zero_value(self):
        p = pattern()
        p.update(snap(1024, [(100, 50, 400.0)]))
        regions = p.regions()
        assert any(r.value == 0 for r in regions)
        for r in regions:
            if r.start_page >= 300:
                assert r.value == 0.0

    def test_min_region_absorbs_slivers(self):
        p = pattern()
        # A 2-page hot sliver between two cold runs.
        p.update(snap(1024, [(0, 100, 16.0), (100, 2, 4000.0), (102, 100, 16.0)]))
        regions = p.regions(min_region_pages=4)
        assert all(r.n_pages >= 4 or r.end_page == 1024 for r in regions)

    def test_merge_tolerance_reduces_regions(self):
        p = pattern()
        p.update(
            snap(
                1024,
                [(0, 100, 100.0), (100, 100, 160.0), (200, 100, 900.0)],
            )
        )
        fine = p.regions(merge_tolerance=0.0)
        coarse = p.regions(merge_tolerance=100.0)
        assert len(coarse) <= len(fine)

    def test_merge_preserves_zero_boundary(self):
        p = pattern()
        p.update(snap(1024, [(0, 100, 30.0)]))
        regions = p.regions(merge_tolerance=1000.0)
        zeros = [r for r in regions if r.value == 0]
        assert zeros, "zero region must survive aggressive merging"
