"""Tests for snapshot objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.errors import SnapshotCorruptionError, SnapshotError
from repro.memsim.tiers import Tier
from repro.vm.layout import MemoryLayout
from repro.vm.snapshot import (
    ReapSnapshot,
    SingleTierSnapshot,
    TieredSnapshot,
    format_page_indices,
)


def snap(n_pages=1024, label="s") -> SingleTierSnapshot:
    return SingleTierSnapshot(
        n_pages=n_pages,
        page_versions=np.arange(n_pages, dtype=np.uint64),
        label=label,
    )


class TestSingleTierSnapshot:
    def test_size(self):
        s = snap(2048)
        assert s.size_bytes == 2048 * config.PAGE_SIZE

    def test_creation_time_scales(self):
        assert snap(4096).creation_time_s() > snap(1024).creation_time_s()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SnapshotError):
            SingleTierSnapshot(n_pages=10, page_versions=np.zeros(5, dtype=np.uint64))


class TestFormatPageIndices:
    def test_short_arrays_listed_fully(self):
        pages = np.array([3, 7, 11], dtype=np.int64)
        assert format_page_indices(pages) == "3, 7, 11"

    def test_long_arrays_capped_with_count(self):
        pages = np.arange(10_000, dtype=np.int64)
        text = format_page_indices(pages)
        assert text.startswith("0, 1, 2, 3, 4, 5, 6, 7, 8, 9")
        assert text.endswith("... (9990 more)")


class TestVerifyMessageBounded:
    def test_huge_corruption_yields_short_message_full_array(self):
        # Regression: a mass corruption used to put the full index
        # array repr in the message.  The message must stay one short
        # line while the exception keeps the complete array for
        # programmatic consumers.
        n_pages = 200_000
        s = snap(n_pages)
        s.page_versions[::2] += np.uint64(1)  # corrupt half the pages
        with pytest.raises(SnapshotCorruptionError) as excinfo:
            s.verify()
        message = str(excinfo.value)
        assert len(message) < 300
        assert "(99990 more)" in message
        assert f"100000 of {n_pages} pages" in message
        assert excinfo.value.corrupt_pages.size == 100_000
        assert np.array_equal(
            excinfo.value.corrupt_pages,
            np.arange(0, n_pages, 2, dtype=np.int64),
        )


class TestReapSnapshot:
    def test_ws_accounting(self):
        base = snap()
        mask = np.zeros(1024, dtype=bool)
        mask[:100] = True
        r = ReapSnapshot(base=base, ws_mask=mask, snapshot_input=2)
        assert r.ws_pages == 100
        assert r.ws_bytes == 100 * config.PAGE_SIZE
        assert r.n_pages == 1024

    def test_mask_mismatch_rejected(self):
        with pytest.raises(SnapshotError):
            ReapSnapshot(base=snap(), ws_mask=np.zeros(10, dtype=bool))


class TestTieredSnapshot:
    def _tiered(self, slow_pages=700, n_pages=1024, sd=1.1):
        placement = np.zeros(n_pages, dtype=np.uint8)
        placement[:slow_pages] = int(Tier.SLOW)
        return TieredSnapshot(
            base=snap(n_pages),
            layout=MemoryLayout.from_placement(placement),
            expected_slowdown=sd,
        )

    def test_fractions(self):
        t = self._tiered(768, 1024)
        assert t.slow_fraction == pytest.approx(0.75)
        assert t.fast_fraction == pytest.approx(0.25)

    def test_tier_bytes(self):
        t = self._tiered(700, 1024)
        assert t.tier_bytes(Tier.SLOW) == 700 * config.PAGE_SIZE
        assert t.tier_bytes(Tier.FAST) == 324 * config.PAGE_SIZE

    def test_generation_time_matches_paper_range(self):
        # Several hundred ms for 128 MB, a couple of seconds at 1 GB.
        t128 = self._tiered(1000, 128 * 256).generation_time_s()
        t1g = self._tiered(1000, 1024 * 256).generation_time_s()
        assert 0.05 < t128 < 0.5
        assert 0.8 < t1g < 3.0

    def test_layout_size_mismatch_rejected(self):
        placement = np.zeros(512, dtype=np.uint8)
        with pytest.raises(SnapshotError):
            TieredSnapshot(
                base=snap(1024),
                layout=MemoryLayout.from_placement(placement),
            )

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(SnapshotError):
            self._tiered(sd=0.9)

    def test_placement_round_trip(self):
        t = self._tiered(100, 1024)
        placement = t.placement()
        assert int((placement == int(Tier.SLOW)).sum()) == 100
