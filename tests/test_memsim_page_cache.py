"""Tests for the host page-cache model (readahead, mincore inflation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressSpaceError
from repro.memsim.page_cache import HostPageCache


class TestFaultIn:
    def test_first_fault_misses(self):
        cache = HostPageCache(100, readahead_pages=0)
        misses = cache.fault_in(np.array([5, 6, 7]))
        assert misses == 3
        assert cache.resident_pages == 3

    def test_second_fault_hits(self):
        cache = HostPageCache(100, readahead_pages=0)
        cache.fault_in(np.array([5, 6, 7]))
        assert cache.fault_in(np.array([5, 6, 7])) == 0

    def test_readahead_marks_prefetched(self):
        cache = HostPageCache(100, readahead_pages=4)
        misses = cache.fault_in(np.array([10]))
        assert misses == 1
        # Pages 11..14 prefetched.
        assert cache.resident_pages == 5
        assert cache.prefetched_pages == 4
        np.testing.assert_array_equal(
            cache.is_resident(np.array([10, 11, 14, 15])),
            [True, True, True, False],
        )

    def test_prefetched_page_hits_without_miss(self):
        cache = HostPageCache(100, readahead_pages=4)
        cache.fault_in(np.array([10]))
        assert cache.fault_in(np.array([12])) == 0
        # Demand-faulting clears the prefetched flag (it is a real touch).
        assert cache.prefetched_pages == 3

    def test_readahead_clipped_at_end(self):
        cache = HostPageCache(10, readahead_pages=8)
        cache.fault_in(np.array([8]))
        assert cache.resident_pages == 2  # 8 + readahead 9 only

    def test_mincore_inflation_vs_demand_mask(self):
        cache = HostPageCache(64, readahead_pages=8)
        cache.fault_in(np.array([0]))
        resident = cache.resident_mask()
        demand = cache.demand_loaded_mask()
        assert resident.sum() == 9  # what mincore() reports
        assert demand.sum() == 1  # what was actually touched

    def test_duplicate_pages_counted_once(self):
        cache = HostPageCache(100, readahead_pages=0)
        assert cache.fault_in(np.array([3, 3, 3])) == 1

    def test_out_of_range_rejected(self):
        cache = HostPageCache(10)
        with pytest.raises(AddressSpaceError):
            cache.fault_in(np.array([10]))
        with pytest.raises(AddressSpaceError):
            cache.fault_in(np.array([-1]))


class TestPopulateAndDrop:
    def test_populate_range(self):
        cache = HostPageCache(100, readahead_pages=0)
        cache.populate_range(10, 20)
        assert cache.resident_pages == 20
        assert cache.prefetched_pages == 0
        assert cache.fault_in(np.arange(10, 30)) == 0

    def test_populate_range_bounds_checked(self):
        cache = HostPageCache(10)
        with pytest.raises(AddressSpaceError):
            cache.populate_range(5, 10)

    def test_drop_clears_everything(self):
        cache = HostPageCache(50, readahead_pages=4)
        cache.fault_in(np.array([0, 20]))
        cache.drop()
        assert cache.resident_pages == 0
        assert cache.fault_in(np.array([0])) == 1

    def test_resident_bytes(self):
        cache = HostPageCache(50, readahead_pages=0)
        cache.fault_in(np.array([1, 2]))
        assert cache.resident_bytes == 2 * 4096


class TestProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=199), min_size=1, max_size=100
        ),
        st.integers(min_value=0, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_faulted_pages_always_resident_afterwards(self, pages, ra):
        cache = HostPageCache(200, readahead_pages=ra)
        arr = np.asarray(pages, dtype=np.int64)
        cache.fault_in(arr)
        assert cache.is_resident(arr).all()
        # Demand mask is a subset of residency.
        assert not np.any(cache.demand_loaded_mask() & ~cache.resident_mask())

    @given(
        st.lists(
            st.integers(min_value=0, max_value=199), min_size=1, max_size=60
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_total_misses_bounded_by_unique_pages(self, pages):
        cache = HostPageCache(200, readahead_pages=8)
        total = sum(
            cache.fault_in(np.asarray([p], dtype=np.int64)) for p in pages
        )
        assert total <= len(set(pages))
