"""Tests for vendor plans and tiered billing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.pricing import (
    AWS_LAMBDA,
    GCP_CLOUD_FUNCTIONS,
    VendorPlan,
    bill_invocation,
    bundle_mb,
)


class TestBundles:
    @pytest.mark.parametrize(
        "need,expected",
        [(1, 128), (128, 128), (129, 256), (300, 384), (1024, 1024)],
    )
    def test_smallest_covering_bundle(self, need, expected):
        assert bundle_mb(need) == expected

    def test_invalid(self):
        with pytest.raises(ConfigError):
            bundle_mb(0)


class TestVendorPlan:
    def test_lambda_bills_per_ms(self):
        assert AWS_LAMBDA.billable_ms(0.0123) == pytest.approx(13.0)

    def test_gcp_bills_per_100ms(self):
        assert GCP_CLOUD_FUNCTIONS.billable_ms(0.0123) == pytest.approx(100.0)
        assert GCP_CLOUD_FUNCTIONS.billable_ms(0.250) == pytest.approx(300.0)

    def test_invocation_cost_uses_bundle(self):
        cost_129 = AWS_LAMBDA.invocation_cost(129, 0.01)
        cost_256 = AWS_LAMBDA.invocation_cost(256, 0.01)
        assert cost_129 == pytest.approx(cost_256)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            AWS_LAMBDA.billable_ms(-1.0)

    def test_invalid_plan(self):
        with pytest.raises(ConfigError):
            VendorPlan("bad", rate_per_mb_ms=0.0, billing_quantum_ms=1.0)


class TestTieredBilling:
    def test_all_dram_bill_unchanged(self):
        """Worst case: users pay exactly today's plans (Section III-D)."""
        bill = bill_invocation(
            guest_mb=256, duration_s=0.1, slow_fraction=0.0, slowdown=1.0
        )
        assert bill.tiered_cost == pytest.approx(bill.dram_cost)
        assert bill.savings_fraction == pytest.approx(0.0)

    def test_offloading_saves(self):
        bill = bill_invocation(
            guest_mb=256, duration_s=0.1, slow_fraction=0.9, slowdown=1.0
        )
        assert bill.tiered_cost < bill.dram_cost
        assert bill.savings_fraction > 0.4

    def test_optimal_saving_is_60pct(self):
        bill = bill_invocation(
            guest_mb=256, duration_s=0.1, slow_fraction=1.0, slowdown=1.0
        )
        assert bill.savings_fraction == pytest.approx(0.6, abs=0.01)

    def test_slowdown_eats_into_savings(self):
        fast = bill_invocation(
            guest_mb=256, duration_s=0.1, slow_fraction=1.0, slowdown=1.0
        )
        slowed = bill_invocation(
            guest_mb=256, duration_s=0.15, slow_fraction=1.0, slowdown=1.5
        )
        assert slowed.savings_fraction < fast.savings_fraction

    def test_tier_fractions_two_tier_matches_slow_fraction(self):
        classic = bill_invocation(
            guest_mb=256, duration_s=0.1, slow_fraction=0.7, slowdown=1.1
        )
        chained = bill_invocation(
            guest_mb=256,
            duration_s=0.1,
            slow_fraction=0.7,
            slowdown=1.1,
            tier_fractions=(0.3, 0.7),
        )
        assert chained.tiered_cost == pytest.approx(classic.tiered_cost)

    def test_tier_fractions_price_middle_tier(self):
        from repro.memsim.compressed import LZ4_POINT, compressed_memory_system

        memory = compressed_memory_system((LZ4_POINT,))
        on_pmem = bill_invocation(
            guest_mb=256, duration_s=0.1, slow_fraction=0.5,
            memory=memory, tier_fractions=(0.5, 0.0, 0.5),
        )
        on_lz4 = bill_invocation(
            guest_mb=256, duration_s=0.1, slow_fraction=0.5,
            memory=memory, tier_fractions=(0.5, 0.5, 0.0),
        )
        # lz4-compressed DRAM (x2.5 ratio at DRAM price) prices exactly
        # like PMEM at the paper's 2.5 cost ratio.
        assert on_lz4.tiered_cost == pytest.approx(on_pmem.tiered_cost)

    def test_tier_fractions_validated(self):
        with pytest.raises(ConfigError):
            bill_invocation(
                guest_mb=128, duration_s=0.1, slow_fraction=0.0,
                tier_fractions=(0.5, 0.2, 0.3),
            )
        with pytest.raises(ConfigError):
            bill_invocation(
                guest_mb=128, duration_s=0.1, slow_fraction=0.0,
                tier_fractions=(0.5, 0.4),
            )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            bill_invocation(
                guest_mb=128, duration_s=0.1, slow_fraction=1.5
            )
        with pytest.raises(ConfigError):
            bill_invocation(
                guest_mb=128, duration_s=0.1, slow_fraction=0.5, slowdown=0.5
            )
