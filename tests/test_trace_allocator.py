"""Tests for the guest allocation model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressSpaceError, ConfigError
from repro.trace.allocator import GuestAllocator


class TestPlace:
    def test_injective(self, rng):
        alloc = GuestAllocator(
            10_000, base_page=100, jitter_pages=32, scatter_fraction=0.05
        )
        frames = alloc.place(2000, rng)
        assert frames.size == 2000
        assert np.unique(frames).size == 2000
        assert frames.min() >= 0 and frames.max() < 10_000

    def test_no_jitter_no_scatter_is_contiguous(self, rng):
        alloc = GuestAllocator(1000, base_page=10)
        frames = alloc.place(100, rng)
        np.testing.assert_array_equal(frames, np.arange(10, 110))

    def test_jitter_moves_base(self):
        alloc = GuestAllocator(10_000, base_page=500, jitter_pages=64)
        bases = {
            int(alloc.place(100, np.random.default_rng(s))[0])
            for s in range(30)
        }
        assert len(bases) > 5
        assert all(436 <= b <= 564 for b in bases)

    def test_scatter_stays_near_block(self, rng):
        alloc = GuestAllocator(
            100_000, base_page=1000, jitter_pages=16, scatter_fraction=0.1
        )
        ws = 5000
        frames = alloc.place(ws, rng)
        slack = max(16, ws // 10)
        assert frames.min() >= 1000 - 16 - slack
        assert frames.max() <= 1000 + 16 + ws + slack

    def test_working_set_too_big_rejected(self, rng):
        alloc = GuestAllocator(100)
        with pytest.raises(AddressSpaceError):
            alloc.place(101, rng)

    def test_exact_fit(self, rng):
        alloc = GuestAllocator(100, base_page=50, jitter_pages=10)
        frames = alloc.place(100, rng)
        np.testing.assert_array_equal(np.sort(frames), np.arange(100))

    def test_invalid_construction(self):
        with pytest.raises(AddressSpaceError):
            GuestAllocator(0)
        with pytest.raises(AddressSpaceError):
            GuestAllocator(10, base_page=10)
        with pytest.raises(ConfigError):
            GuestAllocator(10, scatter_fraction=1.0)
        with pytest.raises(ConfigError):
            GuestAllocator(10, jitter_pages=-1)

    @given(
        n_pages=st.integers(min_value=10, max_value=5000),
        ws_frac=st.floats(min_value=0.01, max_value=1.0),
        scatter=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_injective_and_in_range(self, n_pages, ws_frac, scatter, seed):
        ws = max(1, int(ws_frac * n_pages))
        alloc = GuestAllocator(
            n_pages,
            base_page=n_pages // 20,
            jitter_pages=n_pages // 50,
            scatter_fraction=scatter,
        )
        frames = alloc.place(ws, np.random.default_rng(seed))
        assert np.unique(frames).size == ws
        assert frames.min() >= 0 and frames.max() < n_pages


class TestRemapHistogram:
    def test_sorted_sparse_output(self, rng):
        alloc = GuestAllocator(1000, base_page=10, jitter_pages=4)
        hist = np.array([5, 0, 3, 0, 7])
        pages, counts = alloc.remap_histogram(hist, rng)
        assert pages.size == 3  # zero-count pages dropped
        assert np.all(np.diff(pages) > 0)
        assert counts.sum() == 15

    def test_counts_preserved(self, rng):
        alloc = GuestAllocator(
            5000, base_page=100, jitter_pages=32, scatter_fraction=0.1
        )
        hist = rng.integers(0, 50, size=500)
        pages, counts = alloc.remap_histogram(hist, rng)
        assert counts.sum() == hist.sum()

    def test_non_1d_rejected(self, rng):
        alloc = GuestAllocator(100)
        with pytest.raises(ConfigError):
            alloc.remap_histogram(np.zeros((2, 2)), rng)
