"""Tests for the Firecracker-style lifecycle API."""

from __future__ import annotations

import pytest

from repro.baselines import TossSystem
from repro.errors import VMError
from repro.vm.api import FirecrackerApi, VmState


@pytest.fixture
def api() -> FirecrackerApi:
    return FirecrackerApi()


class TestLifecycle:
    def test_create_starts_not_started(self, api, tiny_function):
        vm_id = api.create_vm(tiny_function)
        assert api.state(vm_id) is VmState.NOT_STARTED

    def test_run_requires_running(self, api, tiny_function):
        vm_id = api.create_vm(tiny_function)
        with pytest.raises(VMError):
            api.run(vm_id, 0)
        api.resume(vm_id)
        result = api.run(vm_id, 0)
        assert result.time_s > 0

    def test_pause_requires_running(self, api, tiny_function):
        vm_id = api.create_vm(tiny_function)
        with pytest.raises(VMError):
            api.pause(vm_id)

    def test_double_resume_rejected(self, api, tiny_function):
        vm_id = api.create_vm(tiny_function)
        api.resume(vm_id)
        with pytest.raises(VMError):
            api.resume(vm_id)

    def test_kill(self, api, tiny_function):
        vm_id = api.create_vm(tiny_function)
        api.kill(vm_id)
        with pytest.raises(VMError):
            api.state(vm_id)

    def test_unknown_vm(self, api):
        with pytest.raises(VMError):
            api.resume("vm-999")


class TestSnapshots:
    def test_snapshot_requires_pause(self, api, tiny_function):
        vm_id = api.create_vm(tiny_function)
        api.resume(vm_id)
        with pytest.raises(VMError):
            api.snapshot_create(vm_id)
        api.pause(vm_id)
        snap_id = api.snapshot_create(vm_id)
        assert snap_id in api.list_snapshots()

    def test_diff_snapshots_unsupported(self, api, tiny_function):
        vm_id = api.create_vm(tiny_function)
        api.resume(vm_id)
        api.pause(vm_id)
        with pytest.raises(VMError):
            api.snapshot_create(vm_id, kind="diff")

    def test_load_starts_paused(self, api, tiny_function):
        vm_id = api.create_vm(tiny_function)
        api.resume(vm_id)
        api.run(vm_id, 1)
        api.pause(vm_id)
        snap_id = api.snapshot_create(vm_id)
        loaded = api.snapshot_load(snap_id, strategy="lazy")
        assert api.state(loaded) is VmState.PAUSED
        api.resume(loaded)
        result = api.run(loaded, 1)
        assert result.counters.major_faults > 0  # lazy restore faults

    def test_unknown_snapshot(self, api):
        with pytest.raises(VMError):
            api.snapshot_load("snap-404")

    def test_register_tiered_snapshot(self, api, tiny_function):
        """An externally built TOSS snapshot loads through the API."""
        system = TossSystem(tiny_function, convergence_window=3)
        snap_id = api.register_snapshot(system.tiered_snapshot, tiny_function)
        loaded = api.snapshot_load(snap_id)  # auto -> tiered restore
        handle_setup = api._handle(loaded).setup_time_s
        assert handle_setup > 0
        api.resume(loaded)
        result = api.run(loaded, 3)
        assert result.counters.slow_accesses > 0

    def test_register_size_mismatch(self, api, tiny_function,
                                     memory_intensive_function):
        system = TossSystem(tiny_function, convergence_window=3)
        # Same guest size here, so build a mismatch artificially.
        from repro.functions.base import FunctionModel

        big = FunctionModel(
            name="big",
            description="",
            guest_mb=256,
            input_type="N",
            inputs=tiny_function.inputs,
            bands=tiny_function.bands,
        )
        with pytest.raises(VMError):
            api.register_snapshot(system.tiered_snapshot, big)
