"""Replicated snapshot placement: balance, time-indexed holders, repair."""

from __future__ import annotations

import pytest

from repro.cluster import FLEET_SUITE, Replacement, SnapshotPlacement
from repro.errors import ClusterError


class TestPlace:
    def test_single_function_lands_on_lightest_hosts(self):
        placement = SnapshotPlacement(4, replication_factor=2)
        assert placement.place("a", 256.0) == [0, 1]
        # The next function avoids the loaded hosts.
        assert placement.place("b", 128.0) == [2, 3]
        # And the next goes where the least weight sits.
        assert placement.place("c", 64.0) == [2, 3]

    def test_place_is_idempotent(self):
        placement = SnapshotPlacement(2, replication_factor=1)
        first = placement.place("a", 100.0)
        assert placement.place("a", 100.0) == first
        assert placement.base_holders("a") == first

    def test_holders_are_distinct_and_primary_first(self):
        placement = SnapshotPlacement(3, replication_factor=3)
        holders = placement.place("a", 100.0)
        assert sorted(holders) == [0, 1, 2]
        assert len(set(holders)) == 3

    def test_replication_factor_validated(self):
        with pytest.raises(ClusterError):
            SnapshotPlacement(2, replication_factor=3)
        with pytest.raises(ClusterError):
            SnapshotPlacement(2, replication_factor=0)


class TestPlaceSuite:
    def test_suite_is_balanced_and_fully_replicated(self):
        placement = SnapshotPlacement(2, replication_factor=2)
        placement.place_suite(list(FLEET_SUITE))
        for function in FLEET_SUITE:
            holders = placement.base_holders(function.name)
            assert len(holders) == 2
            assert len(set(holders)) == 2

    def test_unreplicated_suite_weights_are_lpt_balanced(self):
        placement = SnapshotPlacement(2, replication_factor=1)
        placement.place_suite(list(FLEET_SUITE))
        weights = [0.0, 0.0]
        for function in FLEET_SUITE:
            (holder,) = placement.base_holders(function.name)
            weights[holder] += function.guest_mb
        # Total 896 MB over two hosts: LPT keeps the split tight.
        assert max(weights) - min(weights) <= max(
            f.guest_mb for f in FLEET_SUITE
        )

    def test_replacing_an_already_placed_function_rejected(self):
        placement = SnapshotPlacement(2, replication_factor=1)
        placement.place_suite(list(FLEET_SUITE))
        with pytest.raises(ClusterError, match="already placed"):
            placement.place_suite([FLEET_SUITE[0]])


class TestReplacements:
    def placement(self):
        placement = SnapshotPlacement(3, replication_factor=1)
        placement.place("a", 100.0)  # host 0
        return placement

    def test_replacement_becomes_routable_at_effective_time(self):
        placement = self.placement()
        placement.add_replacement(
            Replacement(effective_s=5.0, function="a", host=2, source=0)
        )
        assert placement.holders_at("a", 4.9) == [0]
        assert placement.holders_at("a", 5.0) == [0, 2]
        assert placement.replacements_for("a")[0].source == 0

    def test_add_replacement_is_idempotent(self):
        placement = self.placement()
        rep = Replacement(effective_s=5.0, function="a", host=2)
        placement.add_replacement(rep)
        placement.add_replacement(rep)
        assert placement.holders_at("a", 9.0) == [0, 2]
        assert len(placement.replacements_for("a")) == 1

    def test_idempotency_keys_on_function_and_host(self):
        # Two distinct records for the same (function, host) — a crash
        # repair and a later durability re-replication, say — must not
        # double-register the holder: the first record wins.
        placement = self.placement()
        placement.add_replacement(
            Replacement(effective_s=5.0, function="a", host=2, source=0)
        )
        placement.add_replacement(
            Replacement(effective_s=7.0, function="a", host=2, source=None)
        )
        assert len(placement.replacements_for("a")) == 1
        assert placement.replacements_for("a")[0].effective_s == 5.0
        # A different host is a different repair, not a duplicate.
        placement.add_replacement(
            Replacement(effective_s=6.0, function="a", host=1)
        )
        assert len(placement.replacements_for("a")) == 2

    def test_replacement_for_unknown_function_rejected(self):
        placement = self.placement()
        with pytest.raises(ClusterError, match="not placed"):
            placement.add_replacement(
                Replacement(effective_s=1.0, function="ghost", host=1)
            )

    def test_replacement_host_out_of_range_rejected(self):
        placement = self.placement()
        with pytest.raises(ClusterError, match="out of range"):
            placement.add_replacement(
                Replacement(effective_s=1.0, function="a", host=7)
            )

    def test_repair_not_routable_before_replication_delay(self):
        # Regression: a crash repair must not appear in holders_at
        # until the replication copy has had re_replication_delay_s to
        # land — routing to it earlier would dispatch to a host that
        # does not hold the snapshot yet.
        from repro.cluster import ClusterConfig, ClusterPlatform, steady_requests
        from repro.core.toss import TossConfig
        from repro.faults.plan import FaultPlan, HostFaultSpec

        crash_s, delay_s = 2.0, 1.0
        cluster = ClusterPlatform(
            ClusterConfig(
                n_hosts=3,
                replication_factor=1,
                cores_per_host=4,
                re_replication_delay_s=delay_s,
            ),
            toss_cfg=TossConfig(
                convergence_window=3, min_profiling_invocations=3
            ),
            plan=FaultPlan(
                hosts=(
                    HostFaultSpec(host=0, crash_windows=((crash_s, 6.0),)),
                )
            ),
        )
        cluster.deploy_fleet(list(FLEET_SUITE))
        cluster.serve(steady_requests(n_requests=120, duration_s=8.0))
        repaired = [
            (name, rep)
            for name in cluster.placement.functions
            for rep in cluster.placement.replacements_for(name)
        ]
        assert repaired, "the crash must have scheduled repairs"
        for name, rep in repaired:
            assert rep.effective_s >= crash_s + delay_s
            before = cluster.placement.holders_at(
                name, rep.effective_s - 1e-9
            )
            after = cluster.placement.holders_at(name, rep.effective_s)
            assert rep.host not in before
            assert rep.host in after

    def test_lightest_host_excluding(self):
        placement = self.placement()  # host 0 carries 100 MB
        assert placement.lightest_host_excluding({0}) in (1, 2)
        assert placement.lightest_host_excluding({0, 1}) == 2
        assert placement.lightest_host_excluding({0, 1, 2}) is None
        # Accounting replacement weight steers later repairs away.
        placement.note_weight(1, 500.0)
        assert placement.lightest_host_excluding({0}) == 2
