"""Tests for the constant-bin-number packing heuristic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.binpack import bin_weights, to_constant_bin_number


class TestPacking:
    def test_exact_bin_count(self):
        bins = to_constant_bin_number([1.0, 2.0, 3.0], 5)
        assert len(bins) == 5

    def test_all_items_placed_once(self):
        items = list(range(1, 20))
        bins = to_constant_bin_number(items, 4, key=float)
        flat = sorted(x for b in bins for x in b)
        assert flat == items

    def test_balance_quality(self):
        """Greedy LPT is within 4/3 of the optimal makespan; for many
        similar items the bins come out nearly equal."""
        items = [10.0] * 40
        weights = bin_weights(to_constant_bin_number(items, 4))
        assert max(weights) == min(weights) == 100.0

    def test_heaviest_first(self):
        # A single dominant item ends up alone in its bin.
        items = [100.0, 1.0, 1.0, 1.0]
        bins = to_constant_bin_number(items, 2)
        weights = bin_weights(bins)
        assert sorted(weights) == [3.0, 100.0]

    def test_key_function(self):
        items = [{"w": 5}, {"w": 1}, {"w": 4}]
        bins = to_constant_bin_number(items, 2, key=lambda d: d["w"])
        weights = bin_weights(bins, key=lambda d: d["w"])
        assert sorted(weights) == [5.0, 5.0]

    def test_zero_weight_items_spread(self):
        bins = to_constant_bin_number([0.0] * 6, 3)
        assert all(len(b) == 2 for b in bins)

    def test_fewer_items_than_bins(self):
        bins = to_constant_bin_number([1.0], 4)
        assert sum(len(b) for b in bins) == 1

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            to_constant_bin_number([1.0], 0)
        with pytest.raises(AnalysisError):
            to_constant_bin_number([-1.0], 2)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=80, deadline=None)
    def test_packing_invariants(self, weights, n_bins):
        bins = to_constant_bin_number(weights, n_bins)
        assert len(bins) == n_bins
        # Conservation: every item lands in exactly one bin.
        assert sorted(x for b in bins for x in b) == sorted(weights)
        # LPT guarantee: max bin <= total/n + max item.
        totals = bin_weights(bins)
        assert max(totals) <= sum(weights) / n_bins + max(weights) + 1e-9

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=30,
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_mostly_equal_bins(self, weights):
        """The paper's 'mostly equally accessed bins': with many items,
        no bin is more than one max-item heavier than the lightest."""
        bins = to_constant_bin_number(weights, 10)
        totals = bin_weights(bins)
        assert max(totals) - min(totals) <= max(weights) + 1e-9
