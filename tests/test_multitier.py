"""Tests for the N-tier extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import ProfilingAnalyzer
from repro.errors import AnalysisError, ConfigError, VMError
from repro.memsim.tiers import DRAM_SPEC, PMEM_SPEC
from repro.multitier import (
    DRAM_CXL_NVME,
    DRAM_PMEM_NVME,
    MultiTierAnalyzer,
    MultiTierVM,
    TierLadder,
    multi_tier_cost,
)

from conftest import make_trace
from test_core_analysis import profiled_pattern


class TestTierLadder:
    def test_valid_ladders(self):
        assert DRAM_CXL_NVME.n_tiers == 3
        assert DRAM_PMEM_NVME.n_tiers == 3

    def test_price_ratios_non_increasing(self):
        for ladder in (DRAM_CXL_NVME, DRAM_PMEM_NVME):
            ratios = ladder.price_ratios()
            assert ratios[0] == pytest.approx(1.0)
            assert all(b <= a for a, b in zip(ratios, ratios[1:]))

    def test_optimal_cost_is_cheapest_rung(self):
        assert DRAM_CXL_NVME.optimal_normalized_cost == pytest.approx(
            DRAM_CXL_NVME.tiers[-1].cost_per_mb / DRAM_SPEC.cost_per_mb
        )

    def test_misordered_ladder_rejected(self):
        with pytest.raises(ConfigError):
            TierLadder(tiers=(PMEM_SPEC, DRAM_SPEC))

    def test_single_tier_rejected(self):
        with pytest.raises(ConfigError):
            TierLadder(tiers=(DRAM_SPEC,))

    def test_latencies_monotone(self):
        lat = DRAM_CXL_NVME.access_latencies()
        assert all(b >= a for a, b in zip(lat, lat[1:]))


class TestMultiTierCost:
    def test_all_top_tier_is_one(self):
        assert multi_tier_cost(1.0, [1.0, 0.0, 0.0], DRAM_CXL_NVME) == 1.0

    def test_all_bottom_is_optimal(self):
        cost = multi_tier_cost(1.0, [0.0, 0.0, 1.0], DRAM_CXL_NVME)
        assert cost == pytest.approx(DRAM_CXL_NVME.optimal_normalized_cost)

    def test_two_tier_degenerate_matches_equation_1(self):
        ladder = TierLadder(tiers=(DRAM_SPEC, PMEM_SPEC))
        cost = multi_tier_cost(1.2, [0.3, 0.7], ladder)
        assert cost == pytest.approx(1.2 * (0.3 + 0.7 / 2.5))

    def test_validation(self):
        with pytest.raises(AnalysisError):
            multi_tier_cost(0.9, [1, 0, 0], DRAM_CXL_NVME)
        with pytest.raises(AnalysisError):
            multi_tier_cost(1.0, [0.5, 0.5], DRAM_CXL_NVME)
        with pytest.raises(AnalysisError):
            multi_tier_cost(1.0, [0.9, 0.2, -0.1], DRAM_CXL_NVME)


class TestMultiTierVM:
    def test_rung_latency_ordering(self):
        trace = make_trace(pages=(0,), counts=(100_000,), cpu_time_s=0.001)
        times = []
        for rung in range(3):
            placement = np.full(4096, rung, dtype=np.uint8)
            vm = MultiTierVM(4096, DRAM_CXL_NVME, placement)
            times.append(vm.execute_time_s(trace))
        assert times == sorted(times)

    def test_slowdown_reference(self):
        trace = make_trace(pages=(0,), counts=(100_000,))
        vm = MultiTierVM(4096, DRAM_CXL_NVME)
        assert vm.slowdown(trace) == pytest.approx(1.0)

    def test_fractions(self):
        placement = np.zeros(100, dtype=np.uint8)
        placement[:25] = 2
        vm = MultiTierVM(100, DRAM_CXL_NVME, placement)
        np.testing.assert_allclose(vm.tier_fractions(), [0.75, 0.0, 0.25])

    def test_out_of_range_rung_rejected(self):
        with pytest.raises(VMError):
            MultiTierVM(10, DRAM_CXL_NVME, np.full(10, 5, dtype=np.uint8))


class TestMultiTierAnalyzer:
    @pytest.fixture
    def pattern_and_trace(self, tiny_function):
        pattern = profiled_pattern(tiny_function)
        return tiny_function, pattern, tiny_function.trace(3, 999)

    def test_three_tier_beats_two_tier_cost(self, pattern_and_trace):
        function, pattern, trace = pattern_and_trace
        two = ProfilingAnalyzer().analyze(pattern, trace)
        three = MultiTierAnalyzer(DRAM_PMEM_NVME).analyze(pattern, trace)
        # A strictly richer ladder can only improve the optimum.
        assert three.cost <= two.cost + 1e-9

    def test_placement_within_bounds(self, pattern_and_trace):
        _, pattern, trace = pattern_and_trace
        result = MultiTierAnalyzer(DRAM_CXL_NVME).analyze(pattern, trace)
        assert result.placement.max() < 3
        assert sum(result.tier_fractions) == pytest.approx(1.0)
        assert result.cost >= DRAM_CXL_NVME.optimal_normalized_cost - 1e-9
        assert result.slowdown >= 1.0

    def test_threshold_bounds_slowdown(self, pattern_and_trace):
        _, pattern, trace = pattern_and_trace
        free = MultiTierAnalyzer(DRAM_PMEM_NVME).analyze(pattern, trace)
        capped = MultiTierAnalyzer(DRAM_PMEM_NVME).analyze(
            pattern, trace, slowdown_threshold=0.01
        )
        assert capped.slowdown - 1.0 <= 0.01 + 1e-9
        assert capped.cost >= free.cost - 1e-9

    def test_hot_pages_stay_on_top_rung(self, memory_intensive_function):
        """A uniformly hot working set resists demotion even with three
        rungs available."""
        pattern = profiled_pattern(memory_intensive_function)
        trace = memory_intensive_function.trace(3, 999)
        result = MultiTierAnalyzer(DRAM_PMEM_NVME).analyze(pattern, trace)
        assert result.top_tier_fraction > 0.1

    def test_mismatched_guest_rejected(self, tiny_function):
        from repro.profiling.unified import UnifiedAccessPattern

        pattern = UnifiedAccessPattern(128, convergence_window=2)
        with pytest.raises(AnalysisError):
            MultiTierAnalyzer(DRAM_CXL_NVME).analyze(
                pattern, tiny_function.trace(0, 0)
            )
