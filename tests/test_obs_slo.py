"""SLO burn-rate alerting and anomaly detection (:mod:`repro.obs.slo`)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs import (
    Alert,
    BurnWindow,
    HostSloView,
    SloConfig,
    SloTracker,
)

FAST = SloConfig(
    name="availability",
    objective=0.9,
    windows=(
        BurnWindow(long_s=4.0, short_s=1.0, threshold=2.0, severity="page"),
    ),
    min_samples=4,
)


def feed(tracker: SloTracker, outcomes: list[tuple[float, bool]],
         host: str = "") -> None:
    for at_s, good in outcomes:
        tracker.observe_request(at_s, good, host=host)


class TestConfigValidation:
    def test_objective_bounds(self):
        with pytest.raises(ConfigError):
            SloConfig(objective=1.0)
        with pytest.raises(ConfigError):
            SloConfig(objective=0.0)

    def test_short_window_cannot_exceed_long(self):
        with pytest.raises(ConfigError):
            BurnWindow(long_s=10.0, short_s=20.0, threshold=1.0)

    def test_windows_required(self):
        with pytest.raises(ConfigError):
            SloConfig(windows=())

    def test_budget_is_complement(self):
        assert SloConfig(objective=0.999).budget == pytest.approx(0.001)


class TestBurnRateAlerting:
    def test_all_good_never_fires(self):
        tracker = SloTracker(FAST)
        feed(tracker, [(i * 0.1, True) for i in range(50)])
        assert tracker.alerts() == []

    def test_sustained_burn_fires_and_resolves(self):
        tracker = SloTracker(FAST)
        # Good traffic, then a burst of failures, then recovery: the
        # alert must fire during the burst and resolve once the short
        # window drains.
        feed(tracker, [(i * 0.1, True) for i in range(20)])        # 0..2s
        feed(tracker, [(2.0 + i * 0.1, False) for i in range(10)])  # 2..3s
        feed(tracker, [(3.0 + i * 0.1, True) for i in range(40)])   # 3..7s
        alerts = tracker.alerts()
        assert len(alerts) == 1
        (alert,) = alerts
        assert alert.severity == "page"
        assert 2.0 <= alert.fired_at_s <= 3.0
        assert alert.resolved_at_s is not None
        assert alert.resolved_at_s > alert.fired_at_s
        assert alert.burn_rate >= FAST.windows[0].threshold

    def test_burn_rate_is_error_rate_over_budget(self):
        tracker = SloTracker(FAST)
        # 50% errors against a 10% budget = burn 5x.
        feed(tracker, [(i * 0.1, i % 2 == 0) for i in range(20)])
        (alert,) = tracker.alerts()
        assert alert.burn_rate == pytest.approx(5.0, rel=0.3)

    def test_short_window_gates_stale_burns(self):
        # Errors long past still sit in the long window, but the short
        # window has drained — no alert may fire on stale damage alone.
        cfg = SloConfig(
            objective=0.9,
            windows=(BurnWindow(long_s=8.0, short_s=0.5, threshold=2.0),),
            min_samples=4,
        )
        tracker = SloTracker(cfg)
        feed(tracker, [(i * 0.1, False) for i in range(6)])    # 0..0.6s
        feed(tracker, [(2.0 + i * 0.1, True) for i in range(30)])
        alerts = tracker.alerts()
        # The burst itself fires; the key claim is that it RESOLVES once
        # the short window drains even though the long window still
        # carries the errors.
        assert all(a.resolved_at_s is not None for a in alerts)

    def test_min_samples_suppresses_early_noise(self):
        tracker = SloTracker(FAST)
        tracker.observe_request(0.0, False)
        tracker.observe_request(0.1, False)
        assert tracker.alerts() == []  # < min_samples, never fired

    def test_open_alert_reported_unresolved(self):
        tracker = SloTracker(FAST)
        feed(tracker, [(i * 0.1, False) for i in range(10)])
        (alert,) = tracker.alerts()
        assert alert.resolved_at_s is None

    def test_per_host_evaluators_are_independent(self):
        tracker = SloTracker(FAST)
        feed(tracker, [(i * 0.1, False) for i in range(10)], host="host0")
        feed(tracker, [(i * 0.1, True) for i in range(10)], host="host1")
        hosts = {a.host for a in tracker.alerts()}
        assert "host0" in hosts
        assert "host1" not in hosts
        # The fleet evaluator sees both hosts' samples.
        assert tracker.sample_count() == 20
        assert tracker.sample_count("host0") == 10

    def test_out_of_order_samples_land_in_their_window(self):
        a = SloTracker(FAST)
        b = SloTracker(FAST)
        samples = [(i * 0.1, i % 2 == 0) for i in range(20)]
        feed(a, samples)
        feed(b, [samples[1], samples[0]] + samples[2:])
        assert a.error_rate() == b.error_rate()

    def test_alert_order_is_deterministic(self):
        def build() -> list[Alert]:
            tracker = SloTracker(
                SloConfig(
                    objective=0.9,
                    windows=(
                        BurnWindow(4.0, 1.0, 2.0, "page"),
                        BurnWindow(8.0, 2.0, 1.0, "ticket"),
                    ),
                    min_samples=4,
                )
            )
            feed(tracker, [(i * 0.1, False) for i in range(10)], host="h1")
            feed(tracker, [(i * 0.1, False) for i in range(10)], host="h0")
            return tracker.alerts()

        first, second = build(), build()
        assert first == second
        keys = [
            (a.fired_at_s, a.host, a.severity, a.window_long_s)
            for a in first
        ]
        assert keys == sorted(keys)


class TestAnomalyDetection:
    def test_flat_signal_never_flags(self):
        tracker = SloTracker(FAST)
        for i in range(100):
            tracker.observe_signal("queue_delay_s", 0.01, i * 0.1)
        assert tracker.anomalies == []

    def test_spike_flags_without_thresholds(self):
        tracker = SloTracker(FAST)
        for i in range(50):
            noise = 0.001 * (1 + (i % 3))  # small, bounded variation
            tracker.observe_signal("restore_setup_s", 0.01 + noise, i * 0.1)
        tracker.observe_signal("restore_setup_s", 1.0, 5.0)  # 100x spike
        assert len(tracker.anomalies) == 1
        (anomaly,) = tracker.anomalies
        assert anomaly.signal == "restore_setup_s"
        assert anomaly.at_s == 5.0
        assert abs(anomaly.zscore) >= 4.0

    def test_warmup_suppresses_flags(self):
        tracker = SloTracker(FAST)
        tracker.observe_signal("fault_rate", 0.0, 0.0)
        tracker.observe_signal("fault_rate", 100.0, 0.1)  # wild, but early
        assert tracker.anomalies == []

    def test_signals_keyed_per_host(self):
        tracker = SloTracker(FAST)
        for i in range(50):
            tracker.observe_signal("queue_delay_s", 0.01 + 0.001 * (i % 3),
                                   i * 0.1, host="h0")
            tracker.observe_signal("queue_delay_s", 5.0 + 0.5 * (i % 3),
                                   i * 0.1, host="h1")
        # h1's large values are NORMAL for h1 — no cross-host bleed.
        assert tracker.anomalies == []


class TestHostSloView:
    def test_forwards_with_bound_host(self):
        tracker = SloTracker(FAST)
        view = HostSloView(tracker, "host3")
        view.observe_request(0.0, True)
        view.observe_signal("queue_delay_s", 0.01, 0.0)
        assert tracker.sample_count("host3") == 1
        assert tracker.hosts() == ["host3"]


class TestRecordsJsonl:
    def test_deterministic_jsonl_stream(self):
        def build() -> str:
            tracker = SloTracker(FAST)
            feed(tracker, [(i * 0.1, i % 2 == 0) for i in range(20)],
                 host="host0")
            for i in range(50):
                tracker.observe_signal("fault_rate", 0.001 * (i % 3),
                                       i * 0.1)
            tracker.observe_signal("fault_rate", 9.0, 5.0)
            return tracker.records_jsonl()

        text = build()
        assert text == build()
        kinds = [json.loads(line)["kind"] for line in text.splitlines()]
        assert "alert" in kinds and "anomaly" in kinds
        # Alerts come first, then anomalies.
        assert kinds == sorted(kinds)

    def test_empty_tracker_is_empty_stream(self):
        assert SloTracker(FAST).records_jsonl() == ""
