"""Tests for the fault plan / injector plane itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.errors import ConfigError
from repro.faults import (
    ZERO_PLAN,
    FaultInjector,
    FaultPlan,
    HostFaultSpec,
    ProfilerFaultSpec,
    SnapshotFaultSpec,
    StorageFaultSpec,
    TierFaultSpec,
)
from repro.vm.snapshot import SingleTierSnapshot


class TestPlanValidation:
    def test_zero_plan_is_zero(self):
        assert ZERO_PLAN.is_zero
        assert FaultPlan().is_zero

    def test_any_domain_makes_plan_nonzero(self):
        assert not FaultPlan(ssd=StorageFaultSpec(read_error_rate=0.1)).is_zero
        assert not FaultPlan(
            tier=TierFaultSpec(outage_windows=((1.0, 2.0),))
        ).is_zero
        assert not FaultPlan(
            snapshot=SnapshotFaultSpec(corruption_rate=0.5)
        ).is_zero
        assert not FaultPlan(
            profiler=ProfilerFaultSpec(sample_loss_rate=0.5)
        ).is_zero

    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            StorageFaultSpec(read_error_rate=1.5)
        with pytest.raises(ConfigError):
            SnapshotFaultSpec(corruption_rate=-0.1)
        with pytest.raises(ConfigError):
            ProfilerFaultSpec(sample_loss_rate=2.0)

    def test_windows_validated(self):
        with pytest.raises(ConfigError):
            TierFaultSpec(outage_windows=((5.0, 5.0),))
        with pytest.raises(ConfigError):
            TierFaultSpec(backpressure_windows=((0.0, 1.0, 0.5),))

    def test_backoff_validated(self):
        with pytest.raises(ConfigError):
            StorageFaultSpec(backoff_base_s=1e-3, backoff_cap_s=1e-4)
        with pytest.raises(ConfigError):
            StorageFaultSpec(max_retries=0)

    def test_retry_success_defaults_to_error_complement(self):
        spec = StorageFaultSpec(read_error_rate=0.2)
        assert spec.effective_retry_success_rate == pytest.approx(0.8)
        pinned = StorageFaultSpec(read_error_rate=0.2, retry_success_rate=0.5)
        assert pinned.effective_retry_success_rate == 0.5


class TestHostFaultSpec:
    def test_host_faults_make_plan_nonzero(self):
        spec = HostFaultSpec(host=0, crash_windows=((1.0, 2.0),))
        assert not spec.is_zero
        assert not FaultPlan(hosts=(spec,)).is_zero
        # A spec with no windows injects nothing.
        assert HostFaultSpec(host=0).is_zero
        assert FaultPlan(hosts=(HostFaultSpec(host=0),)).is_zero

    def test_duplicate_host_specs_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FaultPlan(
                hosts=(
                    HostFaultSpec(host=1, crash_windows=((1.0, 2.0),)),
                    HostFaultSpec(host=1, partition_windows=((3.0, 4.0),)),
                )
            )

    def test_host_index_and_windows_validated(self):
        with pytest.raises(ConfigError):
            HostFaultSpec(host=-1)
        with pytest.raises(ConfigError):
            HostFaultSpec(host=0, crash_windows=((5.0, 5.0),))
        with pytest.raises(ConfigError):
            HostFaultSpec(host=0, partition_windows=((2.0, 1.0),))

    def test_down_and_partitioned_are_half_open_intervals(self):
        spec = HostFaultSpec(
            host=0,
            crash_windows=((1.0, 2.0),),
            partition_windows=((3.0, 4.0),),
        )
        assert not spec.down_at(0.5)
        assert spec.down_at(1.0)
        assert spec.down_at(1.999)
        assert not spec.down_at(2.0)
        assert spec.partitioned_at(3.5)
        assert not spec.partitioned_at(4.0)
        # Routable exactly when neither crashed nor partitioned.
        assert spec.routable_at(2.5)
        assert not spec.routable_at(1.5)
        assert not spec.routable_at(3.5)

    def test_crash_overlapping_matches_service_intervals(self):
        spec = HostFaultSpec(host=0, crash_windows=((2.0, 6.0),))
        assert spec.crash_overlapping(1.0, 1.5) is None
        assert spec.crash_overlapping(6.0, 7.0) is None
        # Straddling the start, fully inside, straddling the end.
        assert spec.crash_overlapping(1.9, 2.1) == (2.0, 6.0)
        assert spec.crash_overlapping(3.0, 4.0) == (2.0, 6.0)
        assert spec.crash_overlapping(5.9, 6.5) == (2.0, 6.0)

    def test_plan_host_spec_lookup(self):
        spec = HostFaultSpec(host=2, crash_windows=((1.0, 2.0),))
        plan = FaultPlan(hosts=(spec,))
        assert plan.host_spec(2) is spec
        assert plan.host_spec(0) is None


class TestInjectorDeterminism:
    def _plan(self, seed=7):
        return FaultPlan(
            ssd=StorageFaultSpec(read_error_rate=0.05, latency_spike_rate=0.02),
            snapshot=SnapshotFaultSpec(corruption_rate=0.3),
            profiler=ProfilerFaultSpec(sample_loss_rate=0.3),
            seed=seed,
        )

    def test_same_seed_same_decisions(self):
        a, b = FaultInjector(self._plan()), FaultInjector(self._plan())
        for _ in range(20):
            assert a.draw_read_faults(1000) == b.draw_read_faults(1000)
            assert a.draw_snapshot_corruption() == b.draw_snapshot_corruption()
            assert a.draw_sample_loss() == b.draw_sample_loss()
        assert a.counters == b.counters

    def test_domains_are_independent_streams(self):
        """Extra draws in one domain never shift another domain's stream."""
        a, b = FaultInjector(self._plan()), FaultInjector(self._plan())
        for _ in range(10):
            a.draw_read_faults(1000)  # only a consumes the ssd stream
        seq_a = [a.draw_sample_loss() for _ in range(10)]
        seq_b = [b.draw_sample_loss() for _ in range(10)]
        assert seq_a == seq_b

    def test_zero_plan_never_draws(self):
        inj = FaultInjector()
        assert inj.is_zero
        assert inj.draw_read_faults(10**6) == 0
        assert inj.retry_reads(0).retries == 0
        assert inj.storage_spike_s(10**6) == 0.0
        assert inj.slow_tier_available()
        assert inj.slow_latency_multiplier() == 1.0
        assert not inj.draw_snapshot_corruption()
        assert not inj.draw_sample_loss()
        assert inj._draws == {}  # no stream was ever touched
        assert all(v == 0 for v in inj.counters.values())


class TestRetries:
    def test_backoff_is_capped_exponential(self):
        plan = FaultPlan(
            ssd=StorageFaultSpec(
                read_error_rate=0.5,
                retry_success_rate=0.0,  # never recovers: all retries spent
                max_retries=4,
                backoff_base_s=1e-3,
                backoff_cap_s=4e-3,
            )
        )
        outcome = FaultInjector(plan).retry_reads(1)
        assert outcome.unrecoverable
        assert outcome.retries == 4
        # 1 + 2 + 4 + capped 4 milliseconds
        assert outcome.backoff_s == pytest.approx(11e-3)

    def test_certain_retry_success_recovers(self):
        plan = FaultPlan(
            ssd=StorageFaultSpec(read_error_rate=0.5, retry_success_rate=1.0)
        )
        outcome = FaultInjector(plan).retry_reads(5)
        assert not outcome.unrecoverable
        assert outcome.retries == 5  # one retry per faulted read


class TestTierWindows:
    def test_outage_window_bounds(self):
        plan = FaultPlan(tier=TierFaultSpec(outage_windows=((10.0, 20.0),)))
        inj = FaultInjector(plan)
        assert inj.slow_tier_available(9.99)
        assert not inj.slow_tier_available(10.0)
        assert not inj.slow_tier_available(19.99)
        assert inj.slow_tier_available(20.0)

    def test_clock_advancing(self):
        plan = FaultPlan(tier=TierFaultSpec(outage_windows=((10.0, 20.0),)))
        inj = FaultInjector(plan)
        assert inj.slow_tier_available()
        inj.advance_to(15.0)
        assert not inj.slow_tier_available()

    def test_backpressure_takes_worst_matching_window(self):
        plan = FaultPlan(
            tier=TierFaultSpec(
                backpressure_windows=((0.0, 50.0, 2.0), (10.0, 20.0, 5.0))
            )
        )
        inj = FaultInjector(plan)
        assert inj.slow_latency_multiplier(5.0) == 2.0
        assert inj.slow_latency_multiplier(15.0) == 5.0
        assert inj.slow_latency_multiplier(60.0) == 1.0


class TestSnapshotCorruption:
    def test_corrupt_snapshot_is_detectable_and_counted(self):
        snap = SingleTierSnapshot(
            n_pages=256,
            page_versions=np.arange(1, 257, dtype=np.uint64),
            label="victim",
        )
        plan = FaultPlan(snapshot=SnapshotFaultSpec(corruption_rate=1.0,
                                                    corrupt_pages=4))
        inj = FaultInjector(plan)
        pages = inj.corrupt_snapshot(snap)
        assert pages.size == 4
        np.testing.assert_array_equal(np.sort(snap.corrupt_pages()),
                                      np.sort(pages))
        assert inj.counters["corrupted_pages"] == 4


class TestDefaultInstall:
    def test_injected_context_restores_previous(self):
        assert faults.get_default() is None
        with faults.injected(FaultPlan()) as inj:
            assert faults.get_default() is inj
            assert faults.resolve(None) is inj
            other = FaultInjector()
            assert faults.resolve(other) is other
            with faults.injected(FaultPlan(seed=99)) as inner:
                assert faults.get_default() is inner
            assert faults.get_default() is inj
        assert faults.get_default() is None
