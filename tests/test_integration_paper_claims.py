"""Integration tests: the paper's headline claims hold in shape.

These run the real Table I suite end to end (profiling -> analysis ->
tiered serving) on a subset of functions, asserting the *relationships*
the paper reports rather than exact numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DramBaseline, ReapSystem, TossSystem
from repro.functions import get_function
from repro.memsim.tiers import DEFAULT_MEMORY_SYSTEM, Tier
from repro.platform import Scheduler
from repro.vm.microvm import MicroVM


@pytest.fixture(scope="module")
def toss_matmul():
    return TossSystem(get_function("matmul"), convergence_window=5)


@pytest.fixture(scope="module")
def toss_pagerank():
    return TossSystem(get_function("pagerank"), convergence_window=5)


class TestFigure2Claims:
    def full_slow_slowdown(self, name, input_index=3):
        func = get_function(name)
        trace = func.trace(input_index, 0)
        slow = np.full(func.n_pages, int(Tier.SLOW), dtype=np.uint8)
        fast = np.full(func.n_pages, int(Tier.FAST), dtype=np.uint8)
        t_slow = MicroVM(func.n_pages, placement=slow).execute(trace).time_s
        t_fast = MicroVM(func.n_pages, placement=fast).execute(trace).time_s
        return t_slow / t_fast

    def test_compress_negligible_slowdown(self):
        """Observation #1: some functions run fully on PMEM for free."""
        assert self.full_slow_slowdown("compress") < 1.05

    def test_pagerank_severe_slowdown(self):
        assert self.full_slow_slowdown("pagerank") > 1.8

    def test_slowdown_grows_with_input(self):
        """Observation #2: slowdown varies across inputs."""
        small = self.full_slow_slowdown("matmul", 0)
        large = self.full_slow_slowdown("matmul", 3)
        assert large > small


class TestTableIIClaims:
    def test_matmul_offloads_most_memory(self, toss_matmul):
        assert 0.85 <= toss_matmul.slow_fraction <= 0.98

    def test_pagerank_offloads_about_half(self, toss_pagerank):
        assert 0.35 <= toss_pagerank.slow_fraction <= 0.60

    def test_costs_near_optimal(self, toss_matmul, toss_pagerank):
        optimal = DEFAULT_MEMORY_SYSTEM.optimal_normalized_cost
        assert optimal <= toss_matmul.analysis.cost <= 0.6
        # pagerank's saving is capped (paper: ~15 %).
        assert 0.75 <= toss_pagerank.analysis.cost < 1.0


class TestFigure7Claims:
    def test_toss_setup_constant_across_inputs(self, toss_matmul):
        setups = [toss_matmul.invoke(i, 0).setup_time_s for i in range(4)]
        assert max(setups) == pytest.approx(min(setups))

    def test_reap_setup_dwarfs_toss_for_big_ws(self, toss_pagerank):
        reap = ReapSystem(get_function("pagerank"), snapshot_input=3)
        reap_setup = reap.invoke(3, 0).setup_time_s
        toss_setup = toss_pagerank.invoke(3, 0).setup_time_s
        assert reap_setup > 20 * toss_setup


class TestFigure8Claims:
    def test_toss_between_dram_and_reap_worst(self, toss_matmul):
        func = get_function("matmul")
        dram = DramBaseline(func)
        reap_worst = ReapSystem(func, snapshot_input=0)
        warm = dram.invoke(3, 7).exec_time_s
        toss_t = toss_matmul.invoke(3, 7).total_time_s / warm
        reap_t = reap_worst.invoke(3, 7).total_time_s / warm
        assert 1.0 <= toss_t < reap_t


class TestFigure9Claims:
    def test_concurrency_story(self, toss_matmul):
        """DRAM flat, TOSS moderate, REAP-Worst collapses at 20-way."""
        func = get_function("matmul")
        sched = Scheduler()
        dram = DramBaseline(func)
        reap_worst = ReapSystem(func, snapshot_input=0)
        warm = dram.invoke(3, 11).exec_time_s

        dram_20 = sched.run_concurrent(dram, 3, 20).mean_exec_s / warm
        toss_20 = sched.run_concurrent(toss_matmul, 3, 20).mean_exec_s / warm
        reap_20 = sched.run_concurrent(reap_worst, 3, 20).mean_exec_s / warm
        assert dram_20 < 1.2
        assert toss_20 < reap_20
        assert reap_20 > 2.0

    def test_pagerank_scales_like_dram(self, toss_pagerank):
        """Section VI-E: pagerank's hot set stayed in DRAM, so it scales."""
        sched = Scheduler()
        t1 = sched.run_concurrent(toss_pagerank, 3, 1).mean_exec_s
        t20 = sched.run_concurrent(toss_pagerank, 3, 20).mean_exec_s
        assert t20 / t1 < 1.5
