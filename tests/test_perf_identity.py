"""Bit-identity tests for the optimised hot paths.

The vectorised DAMON profiler and the flattened, memoised contention
solver replaced loop-heavy implementations whose exact floating-point
results the golden fixtures (Figures 7-9, the Perfetto trace) depend on.
These tests pin the *pre-change* implementations as references inside
the test file and assert the production code reproduces their output
bit for bit on seeded inputs — not approximately, exactly.

A hypothesis property additionally checks the solver memo: answering a
solve from the cache must never change ``contended_times``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProfilingError
from repro.memsim.bandwidth import RESOURCES, ContentionModel, TierDemand
from repro.memsim.storage import OPTANE_SSD_SPEC
from repro.memsim.tiers import DEFAULT_MEMORY_SYSTEM
from repro.profiling.damon import DamonConfig, DamonProfiler, DamonSnapshot
from repro.regions import Region
from repro.vm.microvm import EpochRecord

# -- pinned pre-change implementations ----------------------------------------


class ReferenceDamonProfiler(DamonProfiler):
    """The profiler as it was before vectorisation (pinned verbatim)."""

    def profile(self, epochs) -> DamonSnapshot:
        if not epochs:
            raise ProfilingError("cannot profile an empty invocation")
        total = np.zeros(self.n_pages, dtype=np.float64)
        total_samples = 0
        for epoch in epochs:
            values, samples = self._aggregate(epoch)
            for i in range(self.n_regions):
                s, e = int(self._bounds[i]), int(self._bounds[i + 1])
                total[s:e] += values[i]
            total_samples += samples
            self._adapt(values, samples)
        regions = []
        for i in range(self.n_regions):
            s, e = int(self._bounds[i]), int(self._bounds[i + 1])
            regions.append(Region(s, e - s, float(total[s:e].mean())))
        return DamonSnapshot(
            n_pages=self.n_pages, regions=tuple(regions), samples=total_samples
        )

    def _aggregate(self, epoch: EpochRecord) -> tuple[np.ndarray, int]:
        duration = max(epoch.duration_s, self.cfg.sampling_interval_s)
        samples = max(1, int(round(duration / self.cfg.sampling_interval_s)))
        sizes = np.diff(self._bounds).astype(np.float64)
        if epoch.pages.size:
            rates = epoch.counts * self.cfg.access_bit_scale / duration
            p_page = -np.expm1(-rates * self.cfg.sampling_interval_s)
            idx = np.searchsorted(self._bounds, epoch.pages, side="right") - 1
            p_sum = np.bincount(idx, weights=p_page, minlength=self.n_regions)
        else:
            p_sum = np.zeros(self.n_regions)
        p_region = np.clip(p_sum / sizes, 0.0, 1.0)
        values = self.rng.binomial(samples, p_region).astype(np.float64)
        return values, samples

    def _adapt(self, values: np.ndarray, samples: int) -> None:
        bounds = self._bounds
        keep = [0]
        for i in range(1, len(bounds) - 1):
            pair_scale = max(values[i], values[i - 1])
            threshold = max(1.0, self.cfg.merge_threshold * pair_scale)
            if abs(values[i] - values[i - 1]) > threshold:
                keep.append(i)
            else:
                left_pages = bounds[i] - bounds[keep[-1]]
                right_pages = bounds[i + 1] - bounds[i]
                values[i] = (
                    values[i - 1] * left_pages + values[i] * right_pages
                ) / (left_pages + right_pages)
        keep.append(len(bounds) - 1)
        bounds = bounds[np.asarray(keep, dtype=np.int64)]

        new_bounds = [int(bounds[0])]
        budget = self.cfg.max_nr_regions - (len(bounds) - 1)
        for i in range(len(bounds) - 1):
            start, end = int(bounds[i]), int(bounds[i + 1])
            size = end - start
            if budget > 0 and size >= 2 * self.cfg.min_region_pages:
                lo = start + self.cfg.min_region_pages
                hi = end - self.cfg.min_region_pages
                cut = int(self.rng.integers(lo, hi + 1)) if hi >= lo else None
                if cut is not None and start < cut < end:
                    new_bounds.append(cut)
                    budget -= 1
            new_bounds.append(end)
        self._bounds = np.unique(np.asarray(new_bounds, dtype=np.int64))


class ReferenceContentionModel(ContentionModel):
    """The solver as it was before flattening/memoisation (pinned)."""

    def _solve(self, demands):
        import math

        times = [max(d.nominal_time_s, 1e-12) for d in demands]
        inflation = {r: 1.0 for r in RESOURCES}
        works = [d._stalls_and_work() for d in demands]
        for _ in range(self.max_iterations):
            rates = {r: 0.0 for r in RESOURCES}
            for work, t in zip(works, times):
                for r in RESOURCES:
                    rates[r] += work[r][1] / t
            new_inflation = {
                r: self._inflation(rates[r] / self._capacity[r])
                for r in RESOURCES
            }
            inflation = {
                r: math.exp(
                    (1.0 - self.damping) * math.log(inflation[r])
                    + self.damping * math.log(new_inflation[r])
                )
                for r in RESOURCES
            }
            new_times = []
            for d, work in zip(demands, works):
                t = d.cpu_time_s
                for r in RESOURCES:
                    t += work[r][0] * inflation[r]
                new_times.append(max(t, 1e-12))
            delta = max(
                abs(a - b) / max(a, 1e-12) for a, b in zip(times, new_times)
            )
            times = new_times
            if delta <= self.tolerance:
                break
        return times, inflation


# -- input generators ----------------------------------------------------------


def synthetic_epochs(
    seed: int, n_pages: int, n_epochs: int, *, density: float = 0.1
) -> tuple[EpochRecord, ...]:
    """Seeded epochs with sparse, sorted page sets (some possibly empty)."""
    rng = np.random.default_rng(seed)
    epochs = []
    for e in range(n_epochs):
        if e == n_epochs - 1 and n_epochs > 2:
            # One fully idle epoch exercises the empty-pages branch.
            pages = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
        else:
            n_hot = max(1, int(n_pages * density))
            pages = np.sort(
                rng.choice(n_pages, size=n_hot, replace=False)
            ).astype(np.int64)
            counts = rng.integers(1, 500, size=pages.size).astype(np.int64)
        epochs.append(
            EpochRecord(
                duration_s=float(rng.uniform(0.005, 0.2)),
                pages=pages,
                counts=counts,
            )
        )
    return tuple(epochs)


def random_demand(rng: np.random.Generator) -> TierDemand:
    v = rng.uniform(0.01, 0.5, size=11)
    return TierDemand(
        cpu_time_s=v[0],
        fast_stall_s=v[1],
        fast_bytes=v[2] * 1e9,
        slow_read_stall_s=v[3],
        slow_read_ops=v[4] * 1e6,
        slow_write_stall_s=v[5],
        slow_write_ops=v[6] * 1e6,
        ssd_stall_s=v[7],
        ssd_ops=v[8] * 1e5,
        uffd_stall_s=v[9],
        uffd_ops=v[10] * 1e5,
    )


def model(**kwargs) -> ContentionModel:
    return ContentionModel(DEFAULT_MEMORY_SYSTEM, OPTANE_SSD_SPEC, **kwargs)


# -- DAMON ---------------------------------------------------------------------


class TestDamonBitIdentity:
    N_PAGES = 32768

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 7])
    def test_snapshot_matches_reference_exactly(self, seed):
        epochs = synthetic_epochs(seed, self.N_PAGES, n_epochs=4)
        new = DamonProfiler(
            self.N_PAGES, rng=np.random.default_rng(seed)
        )
        ref = ReferenceDamonProfiler(
            self.N_PAGES, rng=np.random.default_rng(seed)
        )
        snap_new = new.profile(epochs)
        snap_ref = ref.profile(epochs)
        # Exact dataclass equality: every region boundary and every
        # float64 value, no tolerance.
        assert snap_new == snap_ref
        assert np.array_equal(new._bounds, ref._bounds)
        assert np.array_equal(
            snap_new.page_values(), snap_ref.page_values()
        )

    def test_sequential_profiles_keep_matching(self):
        """Region state evolves across invocations; it must not drift."""
        new = DamonProfiler(self.N_PAGES, rng=np.random.default_rng(11))
        ref = ReferenceDamonProfiler(
            self.N_PAGES, rng=np.random.default_rng(11)
        )
        for pass_seed in range(4):
            epochs = synthetic_epochs(100 + pass_seed, self.N_PAGES, 3)
            assert new.profile(epochs) == ref.profile(epochs)

    def test_dense_epochs_match(self):
        """Every page touched: no empty regions, full reduceat segments."""
        rng = np.random.default_rng(5)
        epochs = (
            EpochRecord(
                duration_s=0.05,
                pages=np.arange(self.N_PAGES, dtype=np.int64),
                counts=rng.integers(
                    1, 100, size=self.N_PAGES
                ).astype(np.int64),
            ),
        )
        new = DamonProfiler(self.N_PAGES, rng=np.random.default_rng(5))
        ref = ReferenceDamonProfiler(
            self.N_PAGES, rng=np.random.default_rng(5)
        )
        assert new.profile(epochs) == ref.profile(epochs)

    def test_small_guest_matches(self):
        cfg = DamonConfig(min_region_pages=1, min_nr_regions=4)
        epochs = synthetic_epochs(9, 64, n_epochs=2, density=0.5)
        new = DamonProfiler(64, cfg, rng=np.random.default_rng(9))
        ref = ReferenceDamonProfiler(64, cfg, rng=np.random.default_rng(9))
        assert new.profile(epochs) == ref.profile(epochs)

    def test_page_values_fast_path_matches_fallback(self):
        regions = (Region(0, 10, 2.0), Region(10, 22, 0.0), Region(32, 8, 5.5))
        snap = DamonSnapshot(n_pages=40, regions=regions, samples=3)
        dense = np.zeros(40)
        dense[:10] = 2.0
        dense[32:] = 5.5
        assert np.array_equal(snap.page_values(), dense)
        # A non-tiling snapshot (hand-built, gap at the front) takes the
        # fallback loop and must still expand correctly.
        gappy = DamonSnapshot(
            n_pages=40, regions=(Region(8, 4, 1.0),), samples=1
        )
        expected = np.zeros(40)
        expected[8:12] = 1.0
        assert np.array_equal(gappy.page_values(), expected)


# -- contention solver ---------------------------------------------------------


class TestSolverBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("batch", [1, 2, 7, 40])
    def test_matches_reference_exactly(self, seed, batch):
        rng = np.random.default_rng(seed)
        demands = [random_demand(rng) for _ in range(batch)]
        cur = model()
        ref = ReferenceContentionModel(DEFAULT_MEMORY_SYSTEM, OPTANE_SSD_SPEC)
        assert cur.contended_times(demands) == ref._solve(demands)[0]
        assert cur.inflation_factors(demands) == ref._solve(demands)[1]

    def test_cache_hit_is_bit_identical_and_counted(self):
        rng = np.random.default_rng(21)
        demands = [random_demand(rng) for _ in range(10)]
        m = model()
        first = m.contended_times(demands)
        assert m.solve_cache_hits == 0
        second = m.contended_times(list(demands))  # a distinct list object
        assert m.solve_cache_hits == 1
        assert second == first  # exactly, not approximately
        # inflation_factors on the same batch is also answered cached.
        m.inflation_factors(demands)
        assert m.solve_cache_hits == 2

    def test_cached_results_cannot_be_corrupted(self):
        rng = np.random.default_rng(22)
        demands = [random_demand(rng) for _ in range(5)]
        m = model()
        pristine = model().contended_times(demands)
        first = m.contended_times(demands)
        first[0] = -1.0  # caller scribbles on the returned list
        m.inflation_factors(demands)["fast"] = -1.0
        # The cache handed out copies, so the stored result is untouched.
        assert m.contended_times(demands) == pristine
        assert m.inflation_factors(demands)["fast"] > 0

    def test_lru_bound_is_enforced(self):
        rng = np.random.default_rng(23)
        m = model()
        m.solve_cache_max = 2
        batches = [[random_demand(rng)] for _ in range(4)]
        for batch in batches:
            m.contended_times(batch)
        assert len(m._solve_cache) == 2
        # The oldest batch was evicted: re-solving it is a miss ...
        m.contended_times(batches[0])
        assert m.solve_cache_hits == 0
        # ... while the newest is still a hit.
        m.contended_times(batches[0])
        assert m.solve_cache_hits == 1

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        batch=st.integers(min_value=1, max_value=8),
        replays=st.integers(min_value=1, max_value=4),
    )
    def test_property_cache_never_changes_results(self, seed, batch, replays):
        """Hypothesis: however a batch is replayed through one model, the
        answer equals a fresh model's uncached solve, bit for bit."""
        rng = np.random.default_rng(seed)
        demands = [random_demand(rng) for _ in range(batch)]
        caching = model()
        results = [caching.contended_times(demands) for _ in range(replays + 1)]
        fresh = model().contended_times(demands)
        assert all(r == fresh for r in results)
        assert caching.solve_cache_hits == replays
