"""Property tests for the analyzer's equal-access binning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import ProfilingAnalyzer
from repro.regions import Region


@st.composite
def region_lists(draw):
    """Random contiguous live-region lists with positive values."""
    n = draw(st.integers(min_value=1, max_value=30))
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=500), min_size=n, max_size=n
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10_000), min_size=n, max_size=n
        )
    )
    regions, start = [], 0
    for size, value in zip(sizes, values):
        regions.append(Region(start, size, value))
        start += size
    return regions


class TestQuantileBinning:
    @given(regions=region_lists(), n_bins=st.integers(min_value=1, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_bins_partition_pages(self, regions, n_bins):
        analyzer = ProfilingAnalyzer(n_bins=n_bins)
        bins = analyzer._pack_bins(regions)
        total_pages = sum(r.n_pages for r in regions)
        binned_pages = sum(r.n_pages for b in bins for r in b)
        assert binned_pages == total_pages
        # Covered page set is exactly the input page set (no overlap).
        covered = np.zeros(max(r.end_page for r in regions), dtype=bool)
        for b in bins:
            for r in b:
                assert not covered[r.start_page : r.end_page].any()
                covered[r.start_page : r.end_page] = True

    @given(regions=region_lists(), n_bins=st.integers(min_value=1, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_weight_conserved(self, regions, n_bins):
        analyzer = ProfilingAnalyzer(n_bins=n_bins)
        bins = analyzer._pack_bins(regions)
        total = sum(r.value * r.n_pages for r in regions)
        binned = sum(r.value * r.n_pages for b in bins for r in b)
        # Splitting preserves density, so total weight drifts only by the
        # integer page rounding at split points.
        assert binned == pytest.approx(total, rel=0.05)

    @given(regions=region_lists())
    @settings(max_examples=60, deadline=None)
    def test_bins_density_sorted(self, regions):
        """Quantile bins are ordered: later bins have hotter regions."""
        analyzer = ProfilingAnalyzer(n_bins=5)
        bins = analyzer._pack_bins(regions)
        max_prev = -np.inf
        for b in bins:
            values = [r.value for r in b]
            assert min(values) >= max_prev - 1e-9
            max_prev = max(max(values), max_prev)

    @given(regions=region_lists())
    @settings(max_examples=60, deadline=None)
    def test_mostly_equal_access_weights(self, regions):
        """Section V-C: bins are 'mostly equally accessed'."""
        analyzer = ProfilingAnalyzer(n_bins=10)
        bins = analyzer._pack_bins(regions)
        if len(bins) < 2:
            return
        weights = [sum(r.value * r.n_pages for r in b) for b in bins]
        total = sum(weights)
        target = total / 10
        # Interior bins stay within [0, 2*target] except where a single
        # indivisible hot page dominates.
        max_page_weight = max(r.value for rs in bins for r in rs)
        for w in weights[:-1]:
            assert w <= 2 * target + max_page_weight + 1e-6

    def test_greedy_mode_places_all_items(self):
        regions = [Region(i * 10, 10, float(i + 1)) for i in range(7)]
        analyzer = ProfilingAnalyzer(n_bins=3, pack_mode="greedy")
        bins = analyzer._pack_bins(regions)
        assert sum(len(b) for b in bins) == 7
