"""Tests for DAMON file persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProfilingError
from repro.profiling.damon import DamonProfiler
from repro.profiling.files import (
    load_damon_file,
    pattern_from_files,
    save_damon_file,
)
from repro.vm.vmm import VMM


@pytest.fixture
def damon_file(tmp_path, tiny_function):
    vmm = VMM()
    damon = DamonProfiler(
        tiny_function.n_pages, rng=np.random.default_rng(1)
    )
    boot = vmm.boot_and_run(tiny_function, 3, 0)
    snapshot = damon.profile(boot.execution.epoch_records)
    path = tmp_path / "damon_0.json"
    save_damon_file(snapshot, path)
    return snapshot, path


class TestRoundTrip:
    def test_round_trip(self, damon_file):
        snapshot, path = damon_file
        loaded = load_damon_file(path)
        assert loaded.n_pages == snapshot.n_pages
        assert loaded.samples == snapshot.samples
        np.testing.assert_allclose(
            loaded.page_values(), snapshot.page_values()
        )

    def test_malformed_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ProfilingError):
            load_damon_file(bad)
        with pytest.raises(ProfilingError):
            load_damon_file(tmp_path / "missing.json")


class TestPatternFromFiles:
    def test_offline_profile_matches_online(self, tmp_path, tiny_function):
        """Profiling on one 'host' and analysing the persisted files
        elsewhere yields the same unified pattern."""
        from repro.profiling.unified import UnifiedAccessPattern

        vmm = VMM()
        damon = DamonProfiler(
            tiny_function.n_pages, rng=np.random.default_rng(2)
        )
        online = UnifiedAccessPattern(
            tiny_function.n_pages, convergence_window=10
        )
        paths = []
        for i in range(5):
            boot = vmm.boot_and_run(tiny_function, 3, i)
            snap = damon.profile(boot.execution.epoch_records)
            online.update(snap)
            path = tmp_path / f"damon_{i}.json"
            save_damon_file(snap, path)
            paths.append(path)

        offline = pattern_from_files(paths, convergence_window=10)
        np.testing.assert_allclose(
            offline.page_values(), online.page_values()
        )
        assert offline.invocations == online.invocations

    def test_empty_rejected(self):
        with pytest.raises(ProfilingError):
            pattern_from_files([])
