"""Tests for the SVG renderer."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigError
from repro.plot import bars_to_svg, series_to_svg
from repro.report import SeriesSet, Table


def table() -> Table:
    t = Table("Costs", ["function", "cost", "slowdown"])
    t.add_row("a", 0.45, 1.02)
    t.add_row("b", 0.79, 1.10)
    t.add_row("c", 0.41, 1.00)
    return t


def series_set() -> SeriesSet:
    s = SeriesSet("Scaling", "concurrency", "slowdown")
    s.add("toss", [1, 5, 10, 20], [1.1, 1.2, 1.3, 1.8])
    s.add("reap", [1, 5, 10, 20], [2.0, 2.4, 3.1, 4.5])
    return s


class TestBars:
    def test_well_formed_xml(self):
        svg = bars_to_svg(table(), label_column="function")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_bar_per_cell(self):
        svg = bars_to_svg(
            table(), label_column="function", value_columns=["cost"]
        )
        root = ET.fromstring(svg)
        bars = [
            el for el in root.iter()
            if el.tag.endswith("rect") and el.get("fill", "").startswith("#4c")
        ]
        assert len(bars) == 3 + 1  # 3 bars + 1 legend swatch

    def test_grouped_series(self):
        svg = bars_to_svg(table(), label_column="function")
        assert "cost" in svg and "slowdown" in svg

    def test_bar_heights_scale_with_values(self):
        svg = bars_to_svg(
            table(), label_column="function", value_columns=["cost"]
        )
        root = ET.fromstring(svg)
        heights = [
            float(el.get("height"))
            for el in root.iter()
            if el.tag.endswith("rect")
            and el.get("fill", "").startswith("#4c")
            and float(el.get("height")) > 10
        ]
        # b (0.79) must be the tallest, c (0.41) the shortest.
        assert max(heights) / min(heights) == pytest.approx(0.79 / 0.41, rel=0.05)

    def test_labels_escaped(self):
        t = Table("T", ["function", "cost"])
        t.add_row("a<b>&", 1.0)
        svg = bars_to_svg(t, label_column="function")
        ET.fromstring(svg)  # would raise on unescaped markup
        assert "a&lt;b&gt;&amp;" in svg

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigError):
            bars_to_svg(Table("T", ["a", "b"]), label_column="a")

    def test_no_numeric_columns_rejected(self):
        t = Table("T", ["a", "b"])
        t.add_row("x", "y")
        with pytest.raises(ConfigError):
            bars_to_svg(t, label_column="a")


class TestSeries:
    def test_well_formed_xml(self):
        svg = series_to_svg(series_set())
        root = ET.fromstring(svg)
        polylines = [el for el in root.iter() if el.tag.endswith("polyline")]
        circles = [el for el in root.iter() if el.tag.endswith("circle")]
        assert len(polylines) == 2
        assert len(circles) == 8

    def test_legend_contains_labels(self):
        svg = series_to_svg(series_set())
        assert "toss" in svg and "reap" in svg

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            series_to_svg(SeriesSet("T", "x", "y"))

    def test_constant_x_handled(self):
        s = SeriesSet("T", "x", "y")
        s.add("a", [3, 3], [1.0, 2.0])
        ET.fromstring(series_to_svg(s))


class TestRealFigures:
    def test_fig9_series_render(self):
        """The actual Figure 9 summary renders to valid SVG."""
        from repro.report import SeriesSet

        fig = SeriesSet(
            "Figure 9 summary", "concurrent invocations", "slowdown"
        )
        fig.add("dram", [1, 5, 10, 20], [1.0, 1.0, 1.0, 1.0])
        fig.add("toss", [1, 5, 10, 20], [1.14, 1.18, 1.24, 1.79])
        fig.add("reap-worst", [1, 5, 10, 20], [1.89, 2.3, 2.92, 4.31])
        ET.fromstring(series_to_svg(fig))
