"""Background scrubbing: config, token-bucket pacing, bad-chunk reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.durability import ChunkIndex, ScrubConfig, run_scrub_pass
from repro.errors import ConfigError
from repro.memsim.bandwidth import RESOURCES
from repro.sim.contention import ResourcePool
from repro.vm.snapshot import SingleTierSnapshot


def snap(n_pages: int = 1024) -> SingleTierSnapshot:
    return SingleTierSnapshot(
        n_pages=n_pages,
        page_versions=np.arange(n_pages, dtype=np.uint64),
        label="scrubbed",
    )


def pool_factory(ssd_rate: float = 1e9):
    """A pool with one throttled resource (everything else unbounded)."""

    def factory(loop) -> ResourcePool:
        capacities = {name: 1e12 for name in RESOURCES}
        capacities["ssd"] = ssd_rate
        return ResourcePool(capacities, loop=loop)

    return factory


class TestScrubConfig:
    def test_defaults_valid(self):
        cfg = ScrubConfig()
        assert cfg.interval_s > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval_s": 0.0},
            {"interval_s": -1.0},
            {"chunk_pages": 0},
            {"ops_per_page": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ScrubConfig(**kwargs)


class TestRunScrubPass:
    def _copies(self, n=2, damage_page=None):
        copies = []
        for i in range(n):
            s = snap()
            index = ChunkIndex.for_snapshot(s, 256)
            if damage_page is not None and i == 0:
                s.page_versions[damage_page] += np.uint64(1)
            copies.append((i, s, index))
        return copies

    def test_clean_pass_reports_nothing_bad(self):
        cfg = ScrubConfig(interval_s=1.0, ops_per_page=1.0)
        report = run_scrub_pass(
            self._copies(), cfg, pool_factory=pool_factory(), start_s=3.0
        )
        assert report.bad == []
        assert report.copies_scanned == 2
        assert report.chunks_scanned == 8  # 4 chunks per 1024-page copy
        assert report.ops_consumed == pytest.approx(2048.0)
        assert report.started_s == 3.0
        assert report.finished_s > report.started_s

    def test_bad_chunks_attributed_to_their_copy(self):
        cfg = ScrubConfig(interval_s=1.0, ops_per_page=1.0)
        report = run_scrub_pass(
            self._copies(damage_page=700),
            cfg,
            pool_factory=pool_factory(),
            start_s=0.0,
        )
        assert report.bad == [(0, [2])]

    def test_throttled_bucket_queues_concurrent_scrubs(self):
        # Two copies scrubbed through one slow SSD bucket: the second
        # process queues behind the first, so the pass records waiting
        # time and takes at least the serialised duration.
        cfg = ScrubConfig(interval_s=1.0, ops_per_page=1.0)
        report = run_scrub_pass(
            self._copies(),
            cfg,
            pool_factory=pool_factory(ssd_rate=1024.0),
            start_s=0.0,
        )
        assert report.queued_s > 0.0
        # Longer than one copy's uncontended scan (4 chunks * 0.25 s):
        # the queueing delay is visible in the pass duration.
        assert report.duration_s > 1.0

    def test_faster_bucket_scrubs_sooner(self):
        cfg = ScrubConfig(interval_s=1.0, ops_per_page=1.0)
        slow = run_scrub_pass(
            self._copies(), cfg, pool_factory=pool_factory(1024.0)
        )
        fast = run_scrub_pass(
            self._copies(), cfg, pool_factory=pool_factory(8192.0)
        )
        assert fast.duration_s < slow.duration_s
