"""Tests for the restore strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.memsim.tiers import Tier
from repro.vm.layout import MemoryLayout
from repro.vm.microvm import Backing
from repro.vm.restore import (
    lazy_restore,
    reap_restore,
    tiered_restore,
    warm_restore,
)
from repro.vm.snapshot import ReapSnapshot, SingleTierSnapshot, TieredSnapshot

from conftest import make_trace

N_PAGES = 4096


@pytest.fixture
def base_snapshot() -> SingleTierSnapshot:
    return SingleTierSnapshot(
        n_pages=N_PAGES,
        page_versions=np.arange(1, N_PAGES + 1, dtype=np.uint64),
        label="t",
    )


@pytest.fixture
def reap_snapshot(base_snapshot) -> ReapSnapshot:
    mask = np.zeros(N_PAGES, dtype=bool)
    mask[:512] = True
    return ReapSnapshot(base=base_snapshot, ws_mask=mask, snapshot_input=0)


@pytest.fixture
def tiered_snapshot(base_snapshot) -> TieredSnapshot:
    placement = np.zeros(N_PAGES, dtype=np.uint8)
    placement[1024:] = int(Tier.SLOW)
    return TieredSnapshot(
        base=base_snapshot,
        layout=MemoryLayout.from_placement(placement),
        expected_slowdown=1.05,
    )


class TestWarm:
    def test_zero_setup_everything_resident(self, base_snapshot):
        r = warm_restore(base_snapshot)
        assert r.setup_time_s == 0.0
        assert r.vm.resident_pages == N_PAGES

    def test_versions_restored(self, base_snapshot):
        r = warm_restore(base_snapshot)
        np.testing.assert_array_equal(
            r.vm.page_versions, base_snapshot.page_versions
        )


class TestLazy:
    def test_setup_constant_and_small(self, base_snapshot):
        r = lazy_restore(base_snapshot)
        assert r.setup_time_s == pytest.approx(
            config.VM_STATE_LOAD_S + config.MMAP_REGION_SETUP_S
        )

    def test_pages_ssd_backed(self, base_snapshot):
        r = lazy_restore(base_snapshot)
        assert (r.vm.backing == int(Backing.SSD_FILE)).all()
        assert r.vm.resident_pages == 0

    def test_execution_pays_major_faults(self, base_snapshot):
        r = lazy_restore(base_snapshot)
        res = r.vm.execute(make_trace(n_pages=N_PAGES, pages=(0, 1000), counts=(1, 1)))
        assert res.counters.major_faults > 0


class TestReap:
    def test_setup_scales_with_ws(self, base_snapshot):
        small = ReapSnapshot(
            base=base_snapshot,
            ws_mask=np.arange(N_PAGES) < 100,
        )
        big = ReapSnapshot(
            base=base_snapshot,
            ws_mask=np.arange(N_PAGES) < 3000,
        )
        assert reap_restore(big).setup_time_s > reap_restore(small).setup_time_s

    def test_ws_resident_rest_uffd(self, reap_snapshot):
        r = reap_restore(reap_snapshot)
        assert r.vm.resident_pages == 512
        assert (r.vm.backing[512:] == int(Backing.UFFD_SSD)).all()

    def test_in_ws_execution_fault_free(self, reap_snapshot):
        r = reap_restore(reap_snapshot)
        res = r.vm.execute(
            make_trace(n_pages=N_PAGES, pages=(0, 100, 511), counts=(1, 1, 1))
        )
        assert res.counters.major_faults == 0

    def test_out_of_ws_execution_uffd_faults(self, reap_snapshot):
        r = reap_restore(reap_snapshot)
        res = r.vm.execute(
            make_trace(n_pages=N_PAGES, pages=(512, 600), counts=(1, 1))
        )
        assert res.counters.major_faults == 2
        assert res.demand.uffd_ops == 2


class TestTiered:
    def test_setup_independent_of_snapshot_size(self, tiered_snapshot):
        r = tiered_restore(tiered_snapshot)
        expected = (
            config.VM_STATE_LOAD_S
            + config.TIERED_RESTORE_BASE_S
            + tiered_snapshot.layout.parse_time_s()
            + tiered_snapshot.layout.n_mappings * config.MMAP_REGION_SETUP_S
        )
        assert r.setup_time_s == pytest.approx(expected)
        assert r.n_mappings == 2

    def test_placement_applied(self, tiered_snapshot):
        r = tiered_restore(tiered_snapshot)
        assert r.vm.tier_pages(Tier.SLOW) == N_PAGES - 1024
        assert (r.vm.backing[:1024] == int(Backing.PMEM_COPY)).all()
        assert (r.vm.backing[1024:] == int(Backing.DAX_SLOW)).all()

    def test_no_storage_io_during_execution(self, tiered_snapshot):
        r = tiered_restore(tiered_snapshot)
        res = r.vm.execute(
            make_trace(n_pages=N_PAGES, pages=(0, 2000), counts=(5, 5))
        )
        assert res.demand.ssd_ops == 0
        assert res.counters.major_faults == 0
        assert res.counters.minor_faults == 2

    def test_versions_restored(self, tiered_snapshot):
        r = tiered_restore(tiered_snapshot)
        np.testing.assert_array_equal(
            r.vm.page_versions, tiered_snapshot.base.page_versions
        )


class TestCrossStrategy:
    def test_restore_correctness_identical_contents(
        self, base_snapshot, reap_snapshot, tiered_snapshot
    ):
        """Every strategy restores the same memory image."""
        vms = [
            warm_restore(base_snapshot).vm,
            lazy_restore(base_snapshot).vm,
            reap_restore(reap_snapshot).vm,
            tiered_restore(tiered_snapshot).vm,
        ]
        for vm in vms[1:]:
            np.testing.assert_array_equal(
                vm.page_versions, vms[0].page_versions
            )

    def test_setup_ordering_matches_paper(
        self, base_snapshot, tiered_snapshot
    ):
        """Lazy < TOSS << REAP-with-large-WS (Figure 7's shape)."""
        big_ws = ReapSnapshot(
            base=base_snapshot, ws_mask=np.ones(N_PAGES, dtype=bool)
        )
        lazy_s = lazy_restore(base_snapshot).setup_time_s
        toss_s = tiered_restore(tiered_snapshot).setup_time_s
        reap_s = reap_restore(big_ws).setup_time_s
        assert lazy_s < toss_s < reap_s
