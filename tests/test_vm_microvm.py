"""Tests for the microVM execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.errors import VMError
from repro.memsim.tiers import DEFAULT_MEMORY_SYSTEM, Tier
from repro.vm.microvm import Backing, MicroVM

from conftest import make_trace


def vm_with(n_pages=4096, **kwargs) -> MicroVM:
    return MicroVM(n_pages, **kwargs)


class TestConstruction:
    def test_defaults_all_fast_resident(self):
        vm = vm_with()
        assert vm.tier_pages(Tier.FAST) == 4096
        assert vm.resident_pages == 4096
        assert vm.slow_fraction == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(VMError):
            MicroVM(100, placement=np.zeros(50, dtype=np.uint8))

    def test_arrays_are_copied(self):
        placement = np.zeros(100, dtype=np.uint8)
        vm = MicroVM(100, placement=placement)
        placement[:] = 1
        assert vm.tier_pages(Tier.SLOW) == 0


class TestExecutionTiming:
    def test_all_fast_matches_analytic(self):
        trace = make_trace(pages=(0, 1), counts=(500, 500), cpu_time_s=0.001)
        res = vm_with().execute(trace)
        lat = DEFAULT_MEMORY_SYSTEM.fast.load_latency_s
        assert res.time_s == pytest.approx(0.001 + 1000 * lat)

    def test_slow_placement_slower(self):
        trace = make_trace(pages=(0, 1), counts=(50_000, 50_000), cpu_time_s=0.001)
        fast_t = vm_with().execute(trace).time_s
        slow = np.full(4096, int(Tier.SLOW), dtype=np.uint8)
        slow_t = vm_with(placement=slow).execute(trace).time_s
        assert slow_t > fast_t
        ratio = (300 / 80)
        # Loads only (store_fraction 0): the stall ratio is the latency ratio.
        assert (slow_t - 0.001) / (fast_t - 0.001) == pytest.approx(ratio, rel=0.01)

    def test_store_fraction_increases_slow_time(self):
        slow = np.full(4096, int(Tier.SLOW), dtype=np.uint8)
        loads = make_trace(pages=(0,), counts=(100_000,), store_fraction=0.0)
        stores = make_trace(pages=(0,), counts=(100_000,), store_fraction=1.0)
        t_loads = vm_with(placement=slow).execute(loads).time_s
        t_stores = vm_with(placement=slow).execute(stores).time_s
        assert t_stores > t_loads

    def test_random_fraction_penalises_slow_only(self):
        slow = np.full(4096, int(Tier.SLOW), dtype=np.uint8)
        serial = make_trace(pages=(0,), counts=(100_000,), random_fraction=0.0)
        random_ = make_trace(pages=(0,), counts=(100_000,), random_fraction=1.0)
        assert (
            vm_with(placement=slow).execute(random_).time_s
            > vm_with(placement=slow).execute(serial).time_s
        )
        assert vm_with().execute(random_).time_s == pytest.approx(
            vm_with().execute(serial).time_s
        )

    def test_counters_track_tiers(self):
        placement = np.zeros(4096, dtype=np.uint8)
        placement[100:] = int(Tier.SLOW)
        trace = make_trace(pages=(0, 200), counts=(30, 70))
        res = vm_with(placement=placement).execute(trace)
        assert res.counters.fast_accesses == 30
        assert res.counters.slow_accesses == 70

    def test_trace_size_mismatch_rejected(self):
        with pytest.raises(VMError):
            vm_with(100).execute(make_trace(n_pages=200))


class TestFaults:
    def test_resident_backing_no_faults(self):
        res = vm_with().execute(make_trace())
        assert res.counters.minor_faults == 0
        assert res.counters.major_faults == 0

    def test_zero_backing_minor_faults(self):
        backing = np.full(4096, int(Backing.ZERO), dtype=np.uint8)
        res = vm_with(backing=backing).execute(make_trace(pages=(0, 1, 2), counts=(1, 1, 1)))
        assert res.counters.minor_faults == 3

    def test_dax_slow_minor_faults_no_io(self):
        backing = np.full(4096, int(Backing.DAX_SLOW), dtype=np.uint8)
        res = vm_with(backing=backing).execute(make_trace(pages=(5,), counts=(1,)))
        assert res.counters.minor_faults == 1
        assert res.demand.ssd_ops == 0

    def test_pmem_copy_costs_more_than_minor(self):
        pages = tuple(range(100))
        counts = tuple([1] * 100)
        copy_backing = np.full(4096, int(Backing.PMEM_COPY), dtype=np.uint8)
        zero_backing = np.full(4096, int(Backing.ZERO), dtype=np.uint8)
        t_copy = vm_with(backing=copy_backing).execute(
            make_trace(pages=pages, counts=counts)
        ).time_s
        t_zero = vm_with(backing=zero_backing).execute(
            make_trace(pages=pages, counts=counts)
        ).time_s
        assert t_copy > t_zero

    def test_ssd_backing_major_faults_with_readahead(self):
        backing = np.full(4096, int(Backing.SSD_FILE), dtype=np.uint8)
        pages = tuple(range(18))  # sequential: readahead turns most into minors
        vm = vm_with(backing=backing)
        res = vm.execute(make_trace(pages=pages, counts=tuple([1] * 18)))
        assert res.counters.major_faults >= 1
        assert res.counters.major_faults < 18
        assert res.counters.major_faults + res.counters.minor_faults == 18

    def test_uffd_backing_no_readahead(self):
        backing = np.full(4096, int(Backing.UFFD_SSD), dtype=np.uint8)
        pages = tuple(range(18))
        res = vm_with(backing=backing).execute(
            make_trace(pages=pages, counts=tuple([1] * 18))
        )
        assert res.counters.major_faults == 18
        assert res.demand.uffd_ops == 18

    def test_faults_once_per_page(self):
        backing = np.full(4096, int(Backing.ZERO), dtype=np.uint8)
        vm = vm_with(backing=backing)
        trace = make_trace(pages=(1, 2), counts=(1, 1), n_epochs=3)
        res = vm.execute(trace)
        assert res.counters.minor_faults == 2  # not 6

    def test_warm_reexecution_no_faults(self):
        backing = np.full(4096, int(Backing.SSD_FILE), dtype=np.uint8)
        vm = vm_with(backing=backing)
        trace = make_trace(pages=(0, 1), counts=(1, 1))
        first = vm.execute(trace)
        second = vm.execute(trace)
        assert first.counters.major_faults > 0
        assert second.counters.major_faults == 0
        assert second.time_s < first.time_s

    def test_reset_residency_restores_cold(self):
        backing = np.full(4096, int(Backing.SSD_FILE), dtype=np.uint8)
        vm = vm_with(backing=backing)
        trace = make_trace(pages=(0,), counts=(1,))
        first = vm.execute(trace)
        vm.reset_residency()
        again = vm.execute(trace)
        assert again.counters.major_faults == first.counters.major_faults


class TestDemandVector:
    def test_demand_fields_consistent(self):
        placement = np.zeros(4096, dtype=np.uint8)
        placement[2000:] = int(Tier.SLOW)
        trace = make_trace(
            pages=(0, 3000), counts=(1000, 2000), store_fraction=0.25
        )
        res = vm_with(placement=placement).execute(trace)
        d = res.demand
        assert d.slow_read_ops == pytest.approx(2000 * 0.75)
        assert d.slow_write_ops == pytest.approx(2000 * 0.25)
        assert d.fast_bytes == 1000 * config.CACHELINE_BYTES
        assert d.nominal_time_s == pytest.approx(res.time_s)

    def test_versions_bumped_on_store(self):
        vm = vm_with()
        v0 = vm.page_versions[0]
        vm.execute(make_trace(pages=(0,), counts=(5,), store_fraction=0.5))
        assert vm.page_versions[0] == v0 + 1

    def test_versions_untouched_on_pure_loads(self):
        vm = vm_with()
        v0 = vm.page_versions.copy()
        vm.execute(make_trace(pages=(0,), counts=(5,), store_fraction=0.0))
        np.testing.assert_array_equal(vm.page_versions, v0)

    def test_epoch_records_returned(self):
        res = vm_with().execute(make_trace(n_epochs=4))
        assert len(res.epoch_records) == 4
        assert all(r.duration_s > 0 for r in res.epoch_records)
        assert sum(r.duration_s for r in res.epoch_records) == pytest.approx(
            res.time_s
        )
