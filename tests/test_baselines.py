"""Tests for the comparison systems."""

from __future__ import annotations

import pytest

from repro.baselines import (
    DramBaseline,
    FaasnapSystem,
    ReapSystem,
    TossSystem,
    VanillaLazy,
)
from repro.errors import SnapshotError


class TestDramBaseline:
    def test_no_setup_no_faults(self, tiny_function):
        out = DramBaseline(tiny_function).invoke(3, 0)
        assert out.setup_time_s == 0.0
        assert out.execution.counters.major_faults == 0
        assert out.execution.counters.slow_accesses == 0


class TestVanillaLazy:
    def test_small_setup_faulting_execution(self, tiny_function):
        out = VanillaLazy(tiny_function).invoke(3, 0)
        assert 0 < out.setup_time_s < 0.01
        assert out.execution.counters.major_faults > 0

    def test_each_invocation_cold(self, tiny_function):
        sys = VanillaLazy(tiny_function)
        a = sys.invoke(3, 0)
        b = sys.invoke(3, 0)
        assert b.execution.counters.major_faults == pytest.approx(
            a.execution.counters.major_faults, rel=0.2
        )


class TestReap:
    def test_same_input_executes_fault_free(self, tiny_function):
        sys = ReapSystem(tiny_function, snapshot_input=3, recording_seed=0)
        out = sys.invoke(3, 0)
        # Allocation jitter causes only a tiny miss set between two runs
        # of the same input.
        assert out.execution.counters.major_faults < 0.1 * sys.ws_pages

    def test_small_snapshot_input_faults_heavily(self, tiny_function):
        sys = ReapSystem(tiny_function, snapshot_input=0)
        out = sys.invoke(3, 0)
        touched = tiny_function.ws_pages(3)
        assert out.execution.counters.major_faults > 0.5 * (
            touched - tiny_function.ws_pages(0)
        )

    def test_setup_grows_with_snapshot_input(self, tiny_function):
        s0 = ReapSystem(tiny_function, snapshot_input=0).invoke(0).setup_time_s
        s3 = ReapSystem(tiny_function, snapshot_input=3).invoke(0).setup_time_s
        assert s3 > s0

    def test_invalid_snapshot_input(self, tiny_function):
        with pytest.raises(SnapshotError):
            ReapSystem(tiny_function, snapshot_input=9)


class TestFaasnap:
    def test_mincore_ws_inflated(self, tiny_function):
        sys = FaasnapSystem(tiny_function, snapshot_input=2)
        assert sys.inflation > 1.0
        assert sys.ws_pages > sys.true_ws_pages

    def test_faasnap_setup_exceeds_reap_same_input(self, tiny_function):
        """The inflated WS buys a longer prefetch (Section III-C)."""
        reap = ReapSystem(tiny_function, snapshot_input=2)
        faas = FaasnapSystem(tiny_function, snapshot_input=2)
        assert (
            faas.invoke(2, 0).setup_time_s >= reap.invoke(2, 0).setup_time_s
        )


class TestTossSystem:
    @pytest.fixture(scope="class")
    def toss(self, request):
        function = request.getfixturevalue("tiny_function")
        return TossSystem(function, convergence_window=3)

    def test_reaches_tiered_state(self, tiny_function):
        sys = TossSystem(tiny_function, convergence_window=3)
        assert sys.tiered_snapshot is not None
        assert 0.5 < sys.slow_fraction <= 1.0

    def test_invocation_has_constant_setup(self, tiny_function):
        sys = TossSystem(tiny_function, convergence_window=3)
        setups = {round(sys.invoke(i, 0).setup_time_s, 9) for i in range(4)}
        assert len(setups) == 1

    def test_no_storage_io(self, tiny_function):
        sys = TossSystem(tiny_function, convergence_window=3)
        out = sys.invoke(3, 0)
        assert out.execution.demand.ssd_ops == 0

    def test_profiling_inputs_validated(self, tiny_function):
        with pytest.raises(Exception):
            TossSystem(tiny_function, profiling_inputs=())

    def test_slowdown_threshold_lowers_slowdown(self, tiny_function):
        free = TossSystem(tiny_function, convergence_window=3)
        capped = TossSystem(
            tiny_function, convergence_window=3, slowdown_threshold=0.002
        )
        assert (
            capped.analysis.expected_slowdown
            <= free.analysis.expected_slowdown + 1e-9
        )
