"""Tests for mixed-function concurrent batches and report exports."""

from __future__ import annotations

import json

import pytest

from repro.baselines import DramBaseline, TossSystem
from repro.errors import SchedulerError
from repro.platform import Scheduler
from repro.report import Table


class TestMixedBatches:
    def test_mixed_batch_runs(self, tiny_function, memory_intensive_function):
        sched = Scheduler(n_cores=8)
        a = DramBaseline(tiny_function)
        b = DramBaseline(memory_intensive_function)
        result = sched.run_mixed([(a, 3), (b, 3), (a, 0)])
        assert len(result.exec_times_s) == 3
        assert result.concurrency == 3
        assert result.system == "dram"

    def test_mixed_names_joined(self, tiny_function):
        sched = Scheduler(n_cores=8)
        dram = DramBaseline(tiny_function)
        toss = TossSystem(tiny_function, convergence_window=3)
        result = sched.run_mixed([(dram, 3), (toss, 3)])
        assert result.system == "dram+toss"

    def test_contention_couples_functions(self, tiny_function):
        """A heavy neighbour slows a tiered function down."""
        sched = Scheduler(n_cores=20)
        toss = TossSystem(tiny_function, convergence_window=3)
        alone = sched.run_mixed([(toss, 3)]).exec_times_s[0]
        crowd = sched.run_mixed([(toss, 3)] + [(toss, 3)] * 19)
        assert crowd.exec_times_s[0] >= alone * 0.99

    def test_batch_bounds(self, tiny_function):
        sched = Scheduler(n_cores=2)
        dram = DramBaseline(tiny_function)
        with pytest.raises(SchedulerError):
            sched.run_mixed([])
        with pytest.raises(SchedulerError):
            sched.run_mixed([(dram, 0)] * 3)


class TestReportExports:
    def test_csv_export(self):
        t = Table("T", ["name", "value"])
        t.add_row("a", 1.25)
        t.add_row("b", 2)
        csv_text = t.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1.25"

    def test_dict_export_json_serialisable(self):
        t = Table("T", ["name", "value"])
        t.add_row("a", 1.25)
        doc = json.dumps(t.to_dicts())
        assert json.loads(doc) == [{"name": "a", "value": 1.25}]
