"""Tests for host capacity packing and the extended suite."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.functions.extended import EXTENDED_SUITE, get_extended_function
from repro.platform.capacity import HostCapacity, ResidentVM, packing_density


class TestHostCapacity:
    def test_admission_within_budget(self):
        host = HostCapacity(1024, 4096)
        assert host.admit(ResidentVM("a", 512, 1024))
        assert host.admit(ResidentVM("b", 512, 1024))
        assert not host.admit(ResidentVM("c", 1, 0))
        assert host.resident_count == 2

    def test_slow_budget_enforced_independently(self):
        host = HostCapacity(10_000, 100)
        assert not host.admit(ResidentVM("big-slow", 1, 200))

    def test_release(self):
        host = HostCapacity(1024, 0)
        host.admit(ResidentVM("a", 512, 0))
        host.release("a")
        assert host.used_fast_mb == 0

    def test_unknown_release_is_a_typed_error(self):
        """Satellite: a double release (or a release of a name never
        admitted) is an accounting bug and must surface, not be
        silently tolerated."""
        host = HostCapacity(1024, 0)
        host.admit(ResidentVM("a", 512, 0))
        host.release("a")
        with pytest.raises(SchedulerError, match="no resident VM named 'a'"):
            host.release("a")
        with pytest.raises(SchedulerError, match="'ghost'"):
            host.release("ghost")

    def test_duplicate_admit_is_a_typed_error(self):
        """Satellite: admitting a second VM under a resident name would
        make the release handle ambiguous — it must raise."""
        host = HostCapacity(1024, 0)
        assert host.admit(ResidentVM("a", 128, 0))
        with pytest.raises(SchedulerError, match="already resident"):
            host.admit(ResidentVM("a", 128, 0))
        # After release the name is free again.
        host.release("a")
        assert host.admit(ResidentVM("a", 128, 0))

    def test_fill_with(self):
        host = HostCapacity(1024, 8192)
        count = host.fill_with(ResidentVM("f", 128, 896))
        assert count == 8  # 8 * 128 = 1024 MB of DRAM
        assert host.used_fast_mb == pytest.approx(1024)

    def test_repeated_fill_with_never_collides(self):
        host = HostCapacity(1024, 8192)
        assert host.fill_with(ResidentVM("f", 128, 896)) == 8
        for i in range(8):
            host.release(f"f#{i}")
        # A second fill on the same host generates fresh names.
        assert host.fill_with(ResidentVM("f", 128, 896)) == 8

    def test_invalid_inputs(self):
        with pytest.raises(SchedulerError):
            HostCapacity(0, 100)
        with pytest.raises(SchedulerError):
            ResidentVM("x", -1, 0)
        with pytest.raises(SchedulerError):
            ResidentVM("x", 0, 0)


class TestPackingDensity:
    def test_dram_only_bound(self):
        d, t = packing_density(
            1024, 0.0, host_fast_mb=96 * 1024, host_slow_mb=768 * 1024
        )
        assert d == t == 96

    def test_tiering_multiplies_density(self):
        d, t = packing_density(
            1024, 0.9, host_fast_mb=96 * 1024, host_slow_mb=768 * 1024
        )
        assert d == 96
        # Fast budget allows 960, slow budget caps at 768*1024/921.6 ~ 853.
        assert t > 5 * d

    def test_slow_budget_caps_full_offload(self):
        d, t = packing_density(
            1024, 1.0, host_fast_mb=96 * 1024, host_slow_mb=768 * 1024
        )
        assert t == 768  # bound by the slow tier entirely

    def test_invalid_fraction(self):
        with pytest.raises(SchedulerError):
            packing_density(128, 1.5, host_fast_mb=1024, host_slow_mb=1024)


class TestExtendedSuite:
    def test_catalogue(self):
        assert len(EXTENDED_SUITE) == 4
        assert get_extended_function("dna_alignment").guest_mb == 1024
        with pytest.raises(KeyError):
            get_extended_function("nope")

    def test_traces_build(self):
        for func in EXTENDED_SUITE:
            trace = func.trace(0, 0)
            assert trace.total_accesses > 0
            assert trace.working_set_pages == func.ws_pages(0)

    def test_names_disjoint_from_table1(self):
        from repro.functions import SUITE

        base = {f.name for f in SUITE}
        extended = {f.name for f in EXTENDED_SUITE}
        assert not base & extended
