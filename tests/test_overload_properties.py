"""Property tests for the overload layer's conservation and liveness.

Three invariants that must hold for *every* request stream and
configuration, not just the tuned scenarios:

* conservation — every submitted request is accounted for exactly once
  (shed, failed, or served), and only batch-class traffic is ever shed;
* breaker liveness — a breaker never stays open forever: polling after
  the cool-down always half-opens it, and a succeeding probe closes it;
* ladder sanity — the health state stays on the ladder, moves one rung
  per observation, and always returns to HEALTHY after enough calm.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.toss import TossConfig
from repro.functions.base import FunctionModel, InputSpec
from repro.platform.overload import (
    BreakerState,
    CircuitBreaker,
    DegradationLadder,
    HealthState,
    OverloadConfig,
)
from repro.platform.server import ServerlessPlatform
from repro.trace.synth import Band

TINY = FunctionModel(
    name="tiny",
    description="property-test function",
    guest_mb=128,
    input_type="N",
    inputs=(
        InputSpec("small", t_dram_s=0.002, stall_share=0.02,
                  ws_fraction=0.05, variability=0.02),
        InputSpec("mid", t_dram_s=0.005, stall_share=0.04,
                  ws_fraction=0.10, variability=0.02),
        InputSpec("large", t_dram_s=0.010, stall_share=0.06,
                  ws_fraction=0.15, variability=0.02),
        InputSpec("xl", t_dram_s=0.020, stall_share=0.08,
                  ws_fraction=0.20, variability=0.02),
    ),
    bands=(Band(0.10, 0.70), Band(0.90, 0.30)),
    n_epochs=3,
    store_fraction=0.2,
)


@st.composite
def request_streams(draw):
    """Random small request streams with mixed priority classes."""
    n = draw(st.integers(min_value=1, max_value=12))
    stream = []
    for _ in range(n):
        arrival = draw(
            st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
        )
        input_index = draw(st.integers(min_value=0, max_value=3))
        req_class = draw(st.sampled_from(["latency", "batch"]))
        stream.append((round(arrival, 4), "tiny", input_index, req_class))
    return stream


@st.composite
def guarded_configs(draw):
    """Random active overload configurations."""
    return OverloadConfig(
        max_queue_depth=draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=4))
        ),
        max_queue_delay_s=draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.001, max_value=0.05, allow_nan=False),
            )
        ),
        max_function_depth=draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=3))
        ),
        slo_factor=draw(
            st.one_of(
                st.none(),
                st.floats(min_value=1.1, max_value=30.0, allow_nan=False),
            )
        ),
    )


class TestConservation:
    @settings(max_examples=15, deadline=None)
    @given(stream=request_streams(), cfg=guarded_configs())
    def test_every_request_accounted_exactly_once(self, stream, cfg):
        platform = ServerlessPlatform(
            n_cores=2,
            toss_cfg=TossConfig(
                convergence_window=3, min_profiling_invocations=3
            ),
            overload=cfg,
        )
        platform.deploy(TINY)
        log = platform.serve(stream)
        # One log entry per submitted request, each in exactly one bucket.
        assert len(log) == len(stream)
        shed = sum(1 for e in log if e.shed)
        failed = sum(1 for e in log if e.failed and not e.shed)
        served = sum(1 for e in log if not e.shed and not e.failed)
        assert shed + failed + served == len(stream)
        assert platform.total_shed() == shed
        # Latency-class traffic is never shed, whatever the knobs say.
        assert all(e.request_class == "batch" for e in log if e.shed)
        # Class populations are conserved through sorting/normalisation.
        submitted_batch = sum(1 for r in stream if r[3] == "batch")
        assert (
            sum(1 for e in log if e.request_class == "batch")
            == submitted_batch
        )


class TestBreakerLiveness:
    @settings(max_examples=50, deadline=None)
    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=30),
        threshold=st.integers(min_value=1, max_value=5),
        cooldown=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    def test_breaker_never_stays_open_past_cooldown(
        self, outcomes, threshold, cooldown
    ):
        breaker = CircuitBreaker(threshold, cooldown)
        now = 0.0
        for success in outcomes:
            now += 0.1
            breaker.poll(now)
            breaker.record_outcome(success, now)
        # Resolve any in-flight probe; a failed one chains straight
        # through its fresh cool-down at this late poll time.
        end = now + cooldown + 1.0
        breaker.poll(end)
        if breaker.state is BreakerState.OPEN:
            # However the history went: one poll past the cool-down
            # half-opens the breaker ...
            breaker.poll(breaker.opened_at_s + breaker.cooldown_s)
            assert breaker.state is BreakerState.HALF_OPEN
        if breaker.state is BreakerState.HALF_OPEN:
            # ... and a recovering backend (one good probe) closes it
            # once the probe's finish timestamp is polled past.
            end += cooldown + 1.0
            breaker.record_outcome(True, end)
            breaker.poll(end)
        assert breaker.state is BreakerState.CLOSED or (
            breaker.state is BreakerState.OPEN
            and breaker.consecutive_failures >= threshold
        )


class TestLadderSanity:
    @settings(max_examples=50, deadline=None)
    @given(
        signals=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_state_stays_on_ladder_and_recovers(self, signals):
        ladder = DegradationLadder(
            OverloadConfig(
                pressured_delay_s=0.05,
                degraded_delay_s=0.20,
                shedding_delay_s=0.80,
                degraded_fault_rate=0.5,
                pressured_capacity_fraction=0.9,
                fault_window=5,
                delay_alpha=0.5,
            )
        )
        previous = ladder.state
        for i, (delay, pressure, failed) in enumerate(signals):
            ladder.note_outcome(failed)
            moves = ladder.update(
                float(i), queue_delay_s=delay, capacity_pressure=pressure
            )
            # Always a legal rung, and at most one step per observation.
            assert HealthState.HEALTHY <= ladder.state <= HealthState.SHEDDING
            assert abs(int(ladder.state) - int(previous)) <= 1
            assert len(moves) <= 1
            previous = ladder.state
        # Calm signals always bring the platform back to HEALTHY.
        for j in range(20):
            ladder.note_outcome(False)
            ladder.update(
                1000.0 + j, queue_delay_s=0.0, capacity_pressure=0.0
            )
        assert ladder.state is HealthState.HEALTHY
        # The transition record is internally consistent: consecutive
        # steps chain (each from-state is the previous to-state).
        for (_, _, prev_to), (_, next_from, _) in zip(
            ladder.transitions, ladder.transitions[1:]
        ):
            assert prev_to is next_from
