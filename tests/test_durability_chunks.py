"""Content-addressed chunk index: digests, localisation, chunk repair."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import ChunkIndex, chunk_digests, content_key
from repro.errors import ConfigError, SnapshotError
from repro.vm.snapshot import SingleTierSnapshot, checksum_pages


def snap(n_pages: int = 1024, label: str = "s") -> SingleTierSnapshot:
    return SingleTierSnapshot(
        n_pages=n_pages,
        page_versions=np.arange(n_pages, dtype=np.uint64),
        label=label,
    )


class TestChunkDigests:
    def test_one_digest_per_chunk_last_short(self):
        checksums = checksum_pages(np.arange(1000, dtype=np.uint64))
        digests = chunk_digests(checksums, 256)
        assert digests.shape == (4,)  # 256+256+256+232

    def test_empty_input(self):
        assert chunk_digests(np.empty(0, dtype=np.uint64), 4).shape == (0,)

    def test_chunk_pages_validated(self):
        with pytest.raises(ConfigError):
            chunk_digests(np.arange(8, dtype=np.uint64), 0)

    def test_swap_inside_chunk_changes_digest(self):
        # The fold is position-salted: content is addressed, not just
        # multiset-of-pages.
        checksums = checksum_pages(np.arange(8, dtype=np.uint64))
        swapped = checksums.copy()
        swapped[[0, 1]] = swapped[[1, 0]]
        assert chunk_digests(checksums, 8) != chunk_digests(swapped, 8)

    def test_copies_share_digests(self):
        a = snap()
        b = a.copy()
        assert np.array_equal(
            chunk_digests(a.page_checksums, 256),
            chunk_digests(b.page_checksums, 256),
        )


class TestContentKey:
    def test_equal_sequences_equal_keys(self):
        d = chunk_digests(checksum_pages(np.arange(512, dtype=np.uint64)), 64)
        assert content_key(d) == content_key(d.copy())

    def test_order_sensitive(self):
        d = chunk_digests(checksum_pages(np.arange(512, dtype=np.uint64)), 64)
        assert content_key(d) != content_key(d[::-1])

    def test_empty_is_zero(self):
        assert content_key(np.empty(0, dtype=np.uint64)) == 0


class TestChunkIndex:
    def test_bounds_and_counts(self):
        index = ChunkIndex.for_snapshot(snap(1000), 256)
        assert index.n_chunks == 4
        assert index.chunk_bounds(0) == (0, 256)
        assert index.chunk_bounds(3) == (768, 1000)
        with pytest.raises(ConfigError):
            index.chunk_bounds(4)

    def test_damage_localised_to_its_chunk(self):
        s = snap()
        index = ChunkIndex.for_snapshot(s, 256)
        assert index.bad_chunks(s).size == 0
        s.page_versions[300] += np.uint64(1)
        assert index.bad_chunks(s).tolist() == [1]
        assert not index.chunk_clean(s, 1)
        assert index.chunk_clean(s, 0)

    def test_size_mismatch_rejected(self):
        index = ChunkIndex.for_snapshot(snap(1024), 256)
        with pytest.raises(SnapshotError):
            index.bad_chunks(snap(512))

    def test_repair_chunk_from_clean_copy(self):
        damaged = snap()
        source = damaged.copy()
        index = ChunkIndex.for_snapshot(damaged, 256)
        damaged.page_versions[300] += np.uint64(1)
        assert index.repair_chunk(damaged, source, 1)
        assert index.bad_chunks(damaged).size == 0
        damaged.verify()  # checksums hold again

    def test_repair_refuses_rotted_source(self):
        damaged = snap()
        source = damaged.copy()
        index = ChunkIndex.for_snapshot(damaged, 256)
        damaged.page_versions[300] += np.uint64(1)
        source.page_versions[301] += np.uint64(7)
        assert not index.repair_chunk(damaged, source, 1)
        assert index.bad_chunks(damaged).tolist() == [1]

    def test_mutated_index_is_independent(self):
        index = ChunkIndex.for_snapshot(snap(), 256)
        other = dataclasses.replace(
            index, digests=index.digests ^ np.uint64(1)
        )
        assert not np.array_equal(index.digests, other.digests)


class TestSingleFlipDetectable:
    @given(
        n_pages=st.integers(min_value=1, max_value=512),
        page=st.integers(min_value=0, max_value=511),
        old=st.integers(min_value=0, max_value=2**64 - 1),
        delta=st.integers(min_value=1, max_value=2**64 - 1),
    )
    @settings(max_examples=200, derandomize=True)
    def test_any_single_flip_changes_checksum(
        self, n_pages, page, old, delta
    ):
        # The detectability invariant every layer above relies on: a
        # version flip of any magnitude, anywhere, changes that page's
        # checksum — so scrubs and restores can always see the damage.
        page %= n_pages
        versions = np.full(n_pages, np.uint64(old), dtype=np.uint64)
        before = checksum_pages(versions)
        flipped = versions.copy()
        # Array op, not scalar: uint64 addition wraps silently.
        flipped[page : page + 1] += np.uint64(delta)
        if flipped[page] == versions[page]:
            return  # delta wrapped to identity: not a flip
        after = checksum_pages(flipped)
        assert after[page] != before[page]
        unchanged = np.delete(after, page)
        assert np.array_equal(unchanged, np.delete(before, page))

    @given(
        page=st.integers(min_value=0, max_value=1023),
        delta=st.integers(min_value=1, max_value=2**32),
    )
    @settings(max_examples=100, derandomize=True)
    def test_any_single_flip_fails_exactly_one_chunk(self, page, delta):
        s = snap(1024)
        index = ChunkIndex.for_snapshot(s, 256)
        s.page_versions[page] += np.uint64(delta)
        assert index.bad_chunks(s).tolist() == [page // 256]
