"""Observation wired through the stack: controller, platform, kernel.

The two invariants the driver cares about most live here: *disabled*
tracing changes nothing (outcomes identical with and without an active
observation), and *enabled* tracing produces spans whose phase durations
reconcile with the setup times the simulation reports.
"""

from __future__ import annotations

from repro.core.toss import Phase, TossConfig, TossController
from repro.obs import Observation, observing, perfetto_json, runtime
from repro.obs.spans import SpanStatus
from repro.platform.overload import OverloadConfig
from repro.platform.server import ServerlessPlatform


def drive_to_tiered(ctl: TossController, max_iter: int = 60) -> None:
    for _ in range(max_iter):
        ctl.invoke(3)
        if ctl.phase is Phase.TIERED:
            return
    raise AssertionError("controller never reached the tiered phase")


CFG = TossConfig(convergence_window=3, min_profiling_invocations=3)


class TestControllerSpans:
    def test_lifecycle_phases_become_spans(self, tiny_function):
        with observing() as obs:
            ctl = TossController(tiny_function, cfg=CFG)
            drive_to_tiered(ctl)
            ctl.invoke(3)
        names = [s.name for s in obs.tracer.finished("invoke/")]
        assert names[0] == "invoke/initial"
        assert "invoke/profiling" in names
        assert names[-1] == "invoke/tiered"

    def test_restore_phase_durations_sum_to_setup_time(self, tiny_function):
        with observing() as obs:
            ctl = TossController(tiny_function, cfg=CFG)
            drive_to_tiered(ctl)
            outcome = ctl.invoke(3)
        restore = [
            s for s in obs.tracer.finished("restore/toss") if s.name == "restore/toss"
        ][-1]
        phases = [
            s
            for s in obs.tracer.children_of(restore)
            if s.name.startswith("restore/toss/")
        ]
        assert phases, "tiered restore produced no phase spans"
        total = 0.0
        for span in phases:
            total += span.duration_s
        assert abs(total - outcome.setup_time_s) < 1e-9
        assert restore.attrs["setup_s"] == outcome.setup_time_s

    def test_telemetry_events_land_on_spans(self, tiny_function):
        with observing() as obs:
            ctl = TossController(tiny_function, cfg=CFG)
            drive_to_tiered(ctl)
        tiered = [
            e
            for s in obs.tracer.spans
            for e in s.events
            if e.name == "telemetry/snapshot-generated"
        ]
        assert len(tiered) == 1

    def test_invocation_metrics_recorded(self, tiny_function):
        with observing() as obs:
            ctl = TossController(tiny_function, cfg=CFG)
            drive_to_tiered(ctl)
        counter = obs.metrics.get("toss_invocations_total")
        assert counter is not None
        assert counter.value(function="tiny", phase="initial") == 1
        assert counter.value(function="tiny", phase="profiling") >= 3
        hist = obs.metrics.get("toss_invocation_seconds")
        assert hist.count(phase="initial") == 1
        setup = obs.metrics.get("toss_restore_setup_seconds")
        assert setup.count(strategy="lazy") >= 3

    def test_outcomes_identical_with_and_without_observation(self, tiny_function):
        def run(observed: bool):
            ctl = TossController(tiny_function, cfg=CFG)
            if observed:
                with observing():
                    return [ctl.invoke(i % 4) for i in range(12)]
            return [ctl.invoke(i % 4) for i in range(12)]

        assert run(False) == run(True)

    def test_deactivation_restores_previous(self):
        assert runtime.active() is None
        outer = Observation()
        with observing(outer):
            assert runtime.active() is outer
            with observing() as inner:
                assert runtime.active() is inner
            assert runtime.active() is outer
        assert runtime.active() is None


class TestPlatformSpans:
    def serve(self, tiny_function, overload=False):
        platform = ServerlessPlatform(
            n_cores=2,
            toss_cfg=CFG,
            overload=OverloadConfig(max_queue_depth=1, max_queue_delay_s=0.001)
            if overload
            else None,
        )
        platform.deploy(tiny_function)
        requests = [
            (i * 0.001, "tiny", i % 4, "batch" if overload else "latency")
            for i in range(12)
        ]
        return platform.serve(requests)

    def test_each_served_request_gets_a_root_span(self, tiny_function):
        with observing() as obs:
            log = self.serve(tiny_function)
        roots = obs.tracer.finished("request/tiny")
        assert len(roots) == len(log)
        for span, entry in zip(roots, log):
            assert span.start_s == entry.arrival_s
            assert span.end_s == entry.finish_s
            assert span.attrs["phase"] == entry.phase.value

    def test_request_spans_parent_the_controller_spans(self, tiny_function):
        with observing() as obs:
            self.serve(tiny_function)
        root = obs.tracer.finished("request/tiny")[0]
        kids = obs.tracer.children_of(root)
        assert any(s.name.startswith("invoke/") for s in kids)

    def test_shed_requests_become_aborted_spans(self, tiny_function):
        with observing() as obs:
            log = self.serve(tiny_function, overload=True)
        shed_entries = [e for e in log if e.shed]
        assert shed_entries, "overload config shed nothing"
        aborted = [
            s
            for s in obs.tracer.finished("request/tiny")
            if s.status is SpanStatus.ABORTED
        ]
        assert len(aborted) == len(shed_entries)
        counter = obs.metrics.get("toss_requests_shed_total")
        assert sum(counter.values.values()) == len(shed_entries)

    def test_queue_delay_histogram_covers_all_decisions(self, tiny_function):
        with observing() as obs:
            log = self.serve(tiny_function)
        hist = obs.metrics.get("toss_queue_delay_seconds")
        assert hist.count() == len(log)

    def test_platform_log_identical_under_observation(self, tiny_function):
        plain = self.serve(tiny_function)
        with observing():
            observed = self.serve(tiny_function)
        assert plain == observed

    def test_trace_is_deterministic_across_runs(self, tiny_function):
        with observing() as a:
            self.serve(tiny_function)
        with observing() as b:
            self.serve(tiny_function)
        assert perfetto_json(a.tracer) == perfetto_json(b.tracer)
