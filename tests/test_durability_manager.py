"""The durability plane: ledger, repair ladder, fleet integration."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterPlatform,
    FLEET_SUITE,
    steady_requests,
)
from repro.core.toss import Phase, TossConfig
from repro.durability import CorruptionEvent, DurabilityLedger, ScrubConfig
from repro.errors import ConfigError
from repro.faults.plan import BitRotSpec, FaultPlan

TOSS_CFG = TossConfig(convergence_window=3, min_profiling_invocations=3)

FUNCS = tuple(FLEET_SUITE[:2])


def converged_cluster(
    *,
    n_hosts: int = 2,
    rf: int = 2,
    scrub: ScrubConfig | None = None,
    plan: FaultPlan | None = None,
):
    """A small fleet served long enough for every function to converge."""
    cluster = ClusterPlatform(
        ClusterConfig(
            n_hosts=n_hosts, replication_factor=rf, cores_per_host=4
        ),
        toss_cfg=TOSS_CFG,
        plan=plan,
        # Scrub ticks double as wave boundaries, so an interval inside
        # the stream also makes _sync_replicas run mid-stream and the
        # replicas adopt prepared state.
        scrub=scrub or ScrubConfig(interval_s=1.0, ops_per_page=0.25),
    )
    cluster.deploy_fleet(list(FUNCS))
    cluster.serve(
        steady_requests(n_requests=40, duration_s=4.0, functions=FUNCS)
    )
    return cluster


class TestLedger:
    def event(self):
        return CorruptionEvent(
            injected_s=1.0, host=0, function="f", copy="single",
            cause="bitrot", pages=4,
        )

    def test_first_detection_and_resolution_win(self):
        e = self.event()
        e.detect("scrub", 2.0)
        e.detect("restore", 3.0)
        assert (e.detected_by, e.detected_s) == ("scrub", 2.0)
        e.resolve("repaired-replica", 4.0)
        e.resolve("evicted-unrecoverable", 5.0)
        assert (e.outcome, e.resolved_s) == ("repaired-replica", 4.0)

    def test_unknown_stamps_rejected(self):
        e = self.event()
        with pytest.raises(ConfigError):
            e.detect("psychic", 1.0)
        with pytest.raises(ConfigError):
            e.resolve("wished-away", 1.0)

    def test_unaccounted_requires_both_stamps(self):
        ledger = DurabilityLedger()
        e = ledger.record(self.event())
        assert ledger.unaccounted() == 1
        e.detect("scrub", 2.0)
        assert ledger.unaccounted() == 1
        e.resolve("re-snapshot", 3.0)
        assert ledger.unaccounted() == 0
        assert ledger.detected_by("scrub") == 1
        assert ledger.resolved("re-snapshot") == 1
        assert ledger.unrecoverable == 0


class TestPlaneActivation:
    def test_no_plan_no_scrub_means_no_plane(self):
        cluster = ClusterPlatform(
            ClusterConfig(n_hosts=2, replication_factor=2),
            toss_cfg=TOSS_CFG,
        )
        assert cluster.durability is None

    def test_scrub_config_alone_activates_plane(self):
        cluster = converged_cluster()
        assert cluster.durability is not None
        assert cluster.durability.ledger.events == []

    def test_plane_tracks_every_holder_copy(self):
        cluster = converged_cluster()
        copies = cluster.durability.copies
        for func in FUNCS:
            holders = cluster.placement.base_holders(func.name)
            # Eager replication guarantees the single-tier file on
            # every holder; the tiered file exists at least where the
            # function converged (replicas adopt it at the next sync
            # boundary after convergence).
            for hid in holders:
                assert (hid, func.name, "single") in copies
            primary = next(
                hid
                for hid in holders
                if cluster.hosts[hid]
                .platform.deployments[func.name]
                .invocations
                > 0
            )
            assert (primary, func.name, "tiered") in copies

    def test_scrub_boundaries_step_the_interval(self):
        cluster = ClusterPlatform(
            ClusterConfig(n_hosts=2, replication_factor=2),
            toss_cfg=TOSS_CFG,
            scrub=ScrubConfig(interval_s=100.0),
        )
        ticks = cluster.durability.scrub_boundaries(350.0)
        assert ticks == [100.0, 200.0, 300.0]


class TestRepairLadder:
    def test_replica_repair_restores_copy_and_resolves_event(self):
        cluster = converged_cluster()
        manager = cluster.durability
        name = FUNCS[0].name
        hid = cluster.placement.base_holders(name)[0]
        copy = manager.copies[(hid, name, "single")]
        copy.snapshot.page_versions[3:4] += np.uint64(0x0B17)
        manager._inject(copy, 5.0, "bitrot", 1)
        manager._scrub(10.0)
        copy.snapshot.verify()  # damage gone
        assert manager.ledger.detected_by("scrub") == 1
        assert manager.ledger.resolved("repaired-replica") == 1
        assert manager.unaccounted() == 0

    def test_damaged_tiered_with_clean_single_reprofiles(self):
        cluster = converged_cluster()
        manager = cluster.durability
        name = FUNCS[0].name
        hid = cluster.placement.base_holders(name)[0]
        copy = manager.copies[(hid, name, "tiered")]
        # A content generation nothing else matches: every chunk reads
        # bad and no digest-matching source exists, but the local
        # single-tier file is intact — the re-snapshot rung.
        copy.index = dataclasses.replace(
            copy.index, digests=copy.index.digests ^ np.uint64(1)
        )
        manager._inject(copy, 5.0, "bitrot", 4)
        ctl = cluster.hosts[hid].platform.deployments[name].controller
        assert ctl.phase is Phase.TIERED
        manager._scrub(10.0)
        assert ctl.phase is Phase.PROFILING
        assert ctl.tiered_snapshot is None
        assert ctl.single_snapshot is not None
        assert manager.ledger.resolved("re-snapshot") == 1
        assert (hid, name, "tiered") not in manager.copies
        assert manager.unaccounted() == 0

    def test_all_copies_lost_everywhere_is_unrecoverable(self):
        cluster = converged_cluster(rf=1)
        manager = cluster.durability
        name = FUNCS[0].name
        (hid,) = cluster.placement.base_holders(name)
        single = manager.copies[(hid, name, "single")]
        tiered = manager.copies[(hid, name, "tiered")]
        # Same page damaged in both local files; rf=1 leaves no copy
        # anywhere else — the bottom of the ladder.
        single.snapshot.page_versions[3:4] += np.uint64(0x0B17)
        tiered.snapshot.page_versions[3:4] += np.uint64(0x0B17)
        manager._inject(single, 5.0, "bitrot", 1)
        manager._inject(tiered, 5.0, "bitrot", 1)
        ctl = cluster.hosts[hid].platform.deployments[name].controller
        manager._scrub(10.0)
        assert ctl.phase is Phase.INITIAL
        assert ctl.single_snapshot is None
        assert ctl.tiered_snapshot is None
        assert manager.ledger.unrecoverable == 2
        assert (hid, name, "single") not in manager.copies
        assert (hid, name, "tiered") not in manager.copies
        assert manager.unaccounted() == 0

    def test_clean_remote_copy_rebuilds_cold_and_re_replicates(self):
        cluster = converged_cluster()
        manager = cluster.durability
        name = FUNCS[0].name
        hid = cluster.placement.base_holders(name)[0]
        # Both local files are a content generation nothing matches
        # (chunk repair impossible), but intact copies of the function
        # live on the other holder: cold rebuild plus a scheduled
        # re-replication through the crash-repair pipeline.
        for kind in ("single", "tiered"):
            copy = manager.copies[(hid, name, kind)]
            copy.index = dataclasses.replace(
                copy.index, digests=copy.index.digests ^ np.uint64(1)
            )
            manager._inject(copy, 5.0, "bitrot", 2)
        ctl = cluster.hosts[hid].platform.deployments[name].controller
        before = len(cluster._pending_replacements)
        manager._scrub(10.0)
        assert ctl.phase is Phase.INITIAL
        assert ctl.single_snapshot is None
        assert manager.ledger.resolved("rebuilt-cold") == 2
        assert manager.ledger.unrecoverable == 0
        assert manager.unaccounted() == 0
        pending = cluster._pending_replacements[before:]
        assert len(pending) == 1
        assert pending[0].function == name
        assert pending[0].host == hid
        assert pending[0].force
        # Scheduled off the scrub pass's *finish* time (repairs land
        # after the pass's contended I/O), plus the replication delay.
        assert (
            pending[0].effective_s
            >= 10.0 + cluster.config.re_replication_delay_s
        )


class TestEagerSingleReplication:
    def _early_cluster(self, *, scrub: ScrubConfig | None):
        cluster = ClusterPlatform(
            ClusterConfig(n_hosts=2, replication_factor=2, cores_per_host=4),
            toss_cfg=TOSS_CFG,
            scrub=scrub,
        )
        cluster.deploy_fleet([FUNCS[0]])
        # Too few invocations to converge: the single-tier file is the
        # only snapshot state when the stream ends.  The sub-second
        # scrub interval splits the stream into waves, so the replica
        # sync step actually runs after the first capture.
        cluster.serve(
            steady_requests(
                n_requests=3, duration_s=1.5, functions=(FUNCS[0],)
            )
        )
        return cluster

    def _replica_single(self, cluster):
        name = FUNCS[0].name
        primary, replica = cluster.placement.base_holders(name)
        dep = cluster.hosts[replica].platform.deployments.get(name)
        return None if dep is None else dep.controller.single_snapshot

    def test_durability_plane_replicates_single_file_early(self):
        cluster = self._early_cluster(scrub=ScrubConfig(interval_s=0.5))
        snapshot = self._replica_single(cluster)
        assert snapshot is not None
        # And the replica controller still has never served from it.
        name = FUNCS[0].name
        replica = cluster.placement.base_holders(name)[1]
        dep = cluster.hosts[replica].platform.deployments[name]
        assert dep.invocations == 0
        assert dep.controller.phase is Phase.INITIAL

    def test_without_plane_single_file_is_not_replicated(self):
        cluster = self._early_cluster(scrub=None)
        assert cluster.durability is None
        assert self._replica_single(cluster) is None


class TestFleetIntegration:
    def test_bitrot_run_accounts_for_every_corruption(self):
        plan = FaultPlan(
            bitrot=BitRotSpec(
                ssd_rate_per_page_s=2e-5,
                pmem_rate_per_page_s=1e-5,
                latent_sector_rate_per_s=0.2,
                torn_write_rate=0.2,
            ),
            seed=11,
        )
        cluster = converged_cluster(
            n_hosts=4, rf=2, plan=plan,
            scrub=ScrubConfig(interval_s=1.0, ops_per_page=0.25),
        )
        manager = cluster.durability
        summary = manager.summary()
        assert summary["events"] > 0
        assert summary["unaccounted"] == 0
        assert summary["scrub_passes"] > 0
        resolved = (
            summary["repaired_replica"]
            + summary["re_snapshot"]
            + summary["rebuilt_cold"]
            + summary["unrecoverable"]
        )
        assert resolved == summary["events"]
        assert cluster.availability() >= 0.99

    def test_scrub_only_plane_leaves_serving_identical(self):
        # The plane without any injected faults must not perturb what
        # the fleet serves: same stream, same outcomes, to the bit.
        requests = steady_requests(
            n_requests=40, duration_s=4.0, functions=FUNCS
        )

        def outcomes(scrub):
            cluster = ClusterPlatform(
                ClusterConfig(
                    n_hosts=2, replication_factor=2, cores_per_host=4
                ),
                toss_cfg=TOSS_CFG,
                scrub=scrub,
            )
            cluster.deploy_fleet(list(FUNCS))
            served = cluster.serve(list(requests))
            return [
                (o.entry.function, o.entry.start_s, o.entry.finish_s)
                for o in served
                if o.entry is not None
            ]

        with_plane = outcomes(ScrubConfig(interval_s=1.0))
        without = outcomes(None)
        assert with_plane == without
