"""Edge-case tests across modules: boundaries, degenerate inputs, units."""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.core.cost import normalized_cost
from repro.core.toss import Phase, TossConfig, TossController
from repro.functions.base import FunctionModel, InputSpec
from repro.memsim.page_cache import HostPageCache
from repro.memsim.tiers import Tier
from repro.pricing import GCP_CLOUD_FUNCTIONS, bill_invocation
from repro.profiling.damon import DamonConfig, DamonProfiler
from repro.trace.synth import Band
from repro.vm.microvm import Backing, MicroVM
from repro.vm.layout import MemoryLayout

from conftest import make_trace


class TestUnitsAndScales:
    def test_pages_per_mb(self):
        assert config.PAGES_PER_MB == 256
        assert 128 * config.PAGES_PER_MB == 32768

    def test_ssd_fault_cheaper_than_uffd_wait(self):
        """Kernel-path major faults must stay under REAP's uffd cost for
        the Figure 8 ordering to make sense."""
        assert config.MAJOR_FAULT_LATENCY_S < config.UFFD_FAULT_LATENCY_S

    def test_tiered_restore_beats_prefetch_scaling(self):
        """TOSS's per-restore constant must sit well below even a modest
        working-set prefetch (the Figure 7 story)."""
        constant = (
            config.VM_STATE_LOAD_S
            + config.TIERED_RESTORE_BASE_S
            + 100 * config.MMAP_REGION_SETUP_S
        )
        prefetch_100mb = 100 * config.MB / config.SSD_SEQ_READ_BPS
        assert constant < prefetch_100mb


class TestSinglePageGuests:
    def test_one_page_trace_executes(self):
        trace = make_trace(n_pages=1, pages=(0,), counts=(5,))
        res = MicroVM(1).execute(trace)
        assert res.counters.total_accesses == 5

    def test_one_page_layout(self):
        layout = MemoryLayout.from_placement(
            np.array([int(Tier.SLOW)], dtype=np.uint8)
        )
        assert layout.n_mappings == 1
        assert layout.slow_fraction == 1.0

    def test_one_page_damon(self):
        damon = DamonProfiler(1, rng=np.random.default_rng(0))
        snap = damon.profile(
            [
                type(
                    "R", (), {"duration_s": 0.01,
                              "pages": np.array([0]),
                              "counts": np.array([100])}
                )()
            ]
        )
        assert snap.page_values().shape == (1,)


class TestDegenerateWorkloads:
    def test_function_with_no_memory_pressure(self):
        """A pure-CPU function should offload everything at ~zero cost."""
        func = FunctionModel(
            name="cpu_only",
            description="spin",
            guest_mb=128,
            input_type="N",
            inputs=tuple(
                InputSpec(f"i{i}", t_dram_s=0.01 * (i + 1),
                          stall_share=1e-4, ws_fraction=0.01 * (i + 1))
                for i in range(4)
            ),
            bands=(Band(1.0, 1.0),),
        )
        ctl = TossController(
            func, cfg=TossConfig(convergence_window=3,
                                 min_profiling_invocations=3)
        )
        for _ in range(40):
            ctl.invoke(3)
            if ctl.phase is Phase.TIERED:
                break
        assert ctl.phase is Phase.TIERED
        assert ctl.slow_fraction > 0.95
        assert ctl.analysis.cost < 0.45

    def test_zero_count_epoch_mid_trace(self):
        trace = make_trace(pages=(), counts=(), n_epochs=2)
        res = MicroVM(4096).execute(trace)
        assert res.time_s == pytest.approx(trace.cpu_time_s)

    def test_all_pages_touched_every_epoch(self):
        pages = tuple(range(256))
        counts = tuple([3] * 256)
        trace = make_trace(n_pages=256, pages=pages, counts=counts, n_epochs=3)
        backing = np.full(256, int(Backing.DAX_SLOW), dtype=np.uint8)
        res = MicroVM(256, backing=backing).execute(trace)
        assert res.counters.minor_faults == 256  # first epoch only


class TestPricingQuanta:
    def test_gcp_quantum_dominates_short_invocations(self):
        """With 100 ms billing quanta, a 5 ms function pays for 100 ms —
        tiering savings still apply to the rate."""
        bill = bill_invocation(
            guest_mb=128,
            duration_s=0.005,
            slow_fraction=1.0,
            slowdown=1.0,
            plan=GCP_CLOUD_FUNCTIONS,
        )
        assert bill.dram_cost == pytest.approx(128 * 100.0)
        assert bill.savings_fraction == pytest.approx(0.6, abs=0.01)

    def test_zero_duration_bills_one_quantum(self):
        assert GCP_CLOUD_FUNCTIONS.billable_ms(0.0) == 100.0


class TestPageCacheBoundaries:
    def test_fault_at_last_page(self):
        cache = HostPageCache(16, readahead_pages=8)
        assert cache.fault_in(np.array([15])) == 1
        assert cache.resident_pages == 1  # no readahead past the end

    def test_interleaved_faults_share_readahead(self):
        cache = HostPageCache(64, readahead_pages=8)
        misses_first = cache.fault_in(np.arange(0, 32, 2))  # even pages
        misses_second = cache.fault_in(np.arange(1, 32, 2))  # odd pages
        # Odd pages were mostly covered by the even sweep's readahead;
        # only window-boundary pages (9, 19, 29) can still miss.
        assert misses_first <= 4
        assert misses_second <= misses_first


class TestCostBoundaries:
    def test_cost_at_exact_bounds(self):
        assert normalized_cost(1.0, 0.0) == pytest.approx(0.4)
        assert normalized_cost(1.0, 1.0) == pytest.approx(1.0)

    def test_slowdown_exactly_one(self):
        assert normalized_cost(1.0, 0.5) == pytest.approx(0.7)


class TestDamonBudget:
    def test_region_cap_respected_under_fragmentation(self):
        rng = np.random.default_rng(0)
        damon = DamonProfiler(
            65536, DamonConfig(max_nr_regions=128), rng=rng
        )
        # Highly fragmented pattern pushing toward many regions.
        pages = np.sort(rng.choice(65536, size=2000, replace=False))
        counts = rng.integers(1, 10_000, size=2000)
        rec = type(
            "R", (), {"duration_s": 0.05, "pages": pages, "counts": counts}
        )()
        for _ in range(10):
            damon.profile([rec])
        assert damon.n_regions <= 128
