"""Tests for the access-trace data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.errors import AddressSpaceError, ConfigError
from repro.trace.events import AccessEpoch, InvocationTrace

from conftest import make_trace


class TestAccessEpoch:
    def test_totals(self):
        e = AccessEpoch(0.1, np.array([1, 5]), np.array([10, 20]))
        assert e.total_accesses == 30
        assert e.touched_pages == 2

    def test_empty_epoch_allowed(self):
        e = AccessEpoch(0.1, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert e.total_accesses == 0

    def test_unsorted_pages_rejected(self):
        with pytest.raises(ConfigError):
            AccessEpoch(0.1, np.array([5, 1]), np.array([1, 1]))

    def test_duplicate_pages_rejected(self):
        with pytest.raises(ConfigError):
            AccessEpoch(0.1, np.array([3, 3]), np.array([1, 1]))

    def test_zero_counts_rejected(self):
        with pytest.raises(ConfigError):
            AccessEpoch(0.1, np.array([3]), np.array([0]))

    def test_negative_page_rejected(self):
        with pytest.raises(AddressSpaceError):
            AccessEpoch(0.1, np.array([-1]), np.array([1]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            AccessEpoch(0.1, np.array([1, 2]), np.array([1]))

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError):
            AccessEpoch(0.1, np.array([1]), np.array([1]), random_fraction=1.5)
        with pytest.raises(ConfigError):
            AccessEpoch(0.1, np.array([1]), np.array([1]), store_fraction=-0.1)


class TestInvocationTrace:
    def test_histogram_sums_epochs(self):
        trace = make_trace(n_epochs=3, pages=(0, 1), counts=(5, 7))
        assert trace.histogram[0] == 15 and trace.histogram[1] == 21
        assert trace.total_accesses == 36

    def test_working_set(self):
        trace = make_trace(pages=(0, 2, 9), counts=(1, 1, 1))
        np.testing.assert_array_equal(trace.working_set, [0, 2, 9])
        assert trace.working_set_pages == 3
        assert trace.working_set_bytes == 3 * config.PAGE_SIZE

    def test_cpu_time_sums(self):
        trace = make_trace(cpu_time_s=0.03, n_epochs=3)
        assert trace.cpu_time_s == pytest.approx(0.03)

    def test_out_of_range_epoch_rejected(self):
        with pytest.raises(AddressSpaceError):
            make_trace(n_pages=10, pages=(0, 10), counts=(1, 1))

    def test_nominal_time(self):
        trace = make_trace(pages=(0,), counts=(1000,), cpu_time_s=0.01)
        t = trace.nominal_time_s(80e-9)
        assert t == pytest.approx(0.01 + 1000 * 80e-9)

    def test_first_touch_order(self):
        e1 = AccessEpoch(0.1, np.array([5, 9]), np.array([1, 1]))
        e2 = AccessEpoch(0.1, np.array([2, 5]), np.array([1, 1]))
        trace = InvocationTrace(n_pages=16, epochs=(e1, e2))
        np.testing.assert_array_equal(trace.first_touch_order(), [5, 9, 2])

    def test_mean_random_fraction_weighted(self):
        e1 = AccessEpoch(0.1, np.array([0]), np.array([30]), random_fraction=1.0)
        e2 = AccessEpoch(0.1, np.array([0]), np.array([10]), random_fraction=0.0)
        trace = InvocationTrace(n_pages=4, epochs=(e1, e2))
        assert trace.mean_random_fraction == pytest.approx(0.75)

    def test_mean_random_fraction_empty(self):
        e = AccessEpoch(0.1, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        trace = InvocationTrace(n_pages=4, epochs=(e,))
        assert trace.mean_random_fraction == 0.0
