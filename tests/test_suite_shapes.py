"""Per-function shape tests: every Table I model behaves as documented."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions import INPUT_LABELS, SUITE
from repro.memsim.tiers import Tier
from repro.validate import predicted_full_slow_slowdown
from repro.vm.microvm import MicroVM


def measured_full_slow(func, input_index, seed=0):
    trace = func.trace(input_index, seed)
    slow = np.full(func.n_pages, int(Tier.SLOW), dtype=np.uint8)
    fast = np.full(func.n_pages, int(Tier.FAST), dtype=np.uint8)
    t_slow = MicroVM(func.n_pages, placement=slow).execute(trace).time_s
    t_fast = MicroVM(func.n_pages, placement=fast).execute(trace).time_s
    return t_slow / t_fast


@pytest.mark.parametrize("func", SUITE, ids=lambda f: f.name)
class TestEveryFunction:
    def test_full_slow_matches_closed_form(self, func):
        measured = measured_full_slow(func, 3)
        predicted = predicted_full_slow_slowdown(func)
        assert measured == pytest.approx(predicted, rel=0.08)

    def test_slowdown_monotone_in_input(self, func):
        slowdowns = [
            predicted_full_slow_slowdown(func, i)
            for i in range(len(INPUT_LABELS))
        ]
        assert slowdowns == sorted(slowdowns)

    def test_ws_monotone_in_input(self, func):
        ws = [func.ws_pages(i) for i in range(len(INPUT_LABELS))]
        assert ws == sorted(ws)

    def test_accesses_cover_working_set(self, func):
        for i in range(len(INPUT_LABELS)):
            assert func.total_accesses(i) >= func.ws_pages(i)

    def test_trace_fits_guest(self, func):
        trace = func.trace(0, 0)
        assert trace.working_set.max() < func.n_pages

    def test_invocation_variability_bounded(self, func):
        """Same input, different seeds: execution times differ but stay
        within a plausible band (the guest allocation/noise model)."""
        times = [
            MicroVM(func.n_pages).execute(func.trace(3, s)).time_s
            for s in range(4)
        ]
        spread = max(times) / min(times)
        assert 1.0 <= spread < 2.0


class TestSuiteOrdering:
    def test_fig2_ordering_preserved(self):
        """The qualitative Figure 2 ordering is stable: compress least,
        pagerank most affected by full offloading."""
        slowdowns = {
            f.name: predicted_full_slow_slowdown(f) for f in SUITE
        }
        ordered = sorted(slowdowns, key=slowdowns.get)
        assert ordered[0] == "compress"
        assert ordered[-1] == "pagerank"
        assert set(ordered[-5:]) == {
            "pagerank",
            "matmul",
            "linpack",
            "lr_serving",
            "image_processing",
        }

    def test_guest_sizes_are_bundles(self):
        for f in SUITE:
            assert f.guest_mb in (128, 256, 512, 1024)
