"""Tests for synthetic histogram builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.trace.synth import (
    Band,
    banded_histogram,
    uniform_histogram,
    zipf_histogram,
)


class TestBand:
    def test_valid(self):
        Band(0.5, 0.5)
        Band(1.0, 0.0)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            Band(0.0, 0.5)
        with pytest.raises(ConfigError):
            Band(1.5, 0.5)
        with pytest.raises(ConfigError):
            Band(0.5, 1.5)


class TestBandedHistogram:
    def test_exact_total(self, rng):
        hist = banded_histogram(
            1000, 12345, (Band(0.1, 0.7), Band(0.9, 0.3)), rng
        )
        assert hist.sum() == 12345
        assert hist.size == 1000

    def test_band_shares_respected(self, rng):
        hist = banded_histogram(
            1000, 100_000, (Band(0.1, 0.7), Band(0.9, 0.3)), rng, noise=0.0
        )
        head = hist[:100].sum()
        assert head == pytest.approx(70_000, rel=0.02)

    def test_hot_head_denser_than_tail(self, rng):
        hist = banded_histogram(
            1000, 100_000, (Band(0.1, 0.7), Band(0.9, 0.3)), rng
        )
        assert hist[:100].mean() > 10 * hist[100:].mean()

    def test_share_sums_validated(self, rng):
        with pytest.raises(ConfigError):
            banded_histogram(100, 10, (Band(0.5, 0.5),), rng)
        with pytest.raises(ConfigError):
            banded_histogram(
                100, 10, (Band(0.5, 0.9), Band(0.5, 0.2)), rng
            )

    def test_zero_total_allowed(self, rng):
        hist = banded_histogram(100, 0, (Band(1.0, 1.0),), rng)
        assert hist.sum() == 0

    @given(
        ws=st.integers(min_value=1, max_value=5000),
        total=st.integers(min_value=0, max_value=10**6),
        head=st.floats(min_value=0.05, max_value=0.95),
        acc=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_always_exact(self, ws, total, head, acc, seed):
        rng = np.random.default_rng(seed)
        bands = (Band(head, acc), Band(1.0 - head, 1.0 - acc))
        hist = banded_histogram(ws, total, bands, rng)
        assert hist.sum() == total
        assert (hist >= 0).all()


class TestZipfAndUniform:
    def test_zipf_monotone_without_shuffle(self, rng):
        hist = zipf_histogram(100, 100_000, alpha=1.2, rng=rng, noise=0.0)
        assert hist[0] > hist[10] > hist[99]

    def test_zipf_shuffle_scatters(self):
        rng = np.random.default_rng(0)
        hist = zipf_histogram(1000, 100_000, alpha=1.2, rng=rng, shuffle=True)
        # The hottest page should (almost surely) not be page 0 after shuffle.
        top = np.argsort(hist)[::-1][:10]
        assert not np.array_equal(np.sort(top), np.arange(10))

    def test_uniform_is_flat(self, rng):
        hist = uniform_histogram(1000, 1_000_000, rng, noise=0.0)
        assert hist.max() - hist.min() <= 1

    def test_exact_totals(self, rng):
        assert zipf_histogram(77, 999, 0.8, rng).sum() == 999
        assert uniform_histogram(77, 999, rng).sum() == 999

    def test_invalid_params(self, rng):
        with pytest.raises(ConfigError):
            zipf_histogram(0, 10, 1.0, rng)
        with pytest.raises(ConfigError):
            zipf_histogram(10, 10, -1.0, rng)
