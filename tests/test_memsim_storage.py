"""Tests for the storage-device model."""

from __future__ import annotations

import pytest

from repro import config
from repro.errors import ConfigError
from repro.memsim.storage import OPTANE_SSD_SPEC, StorageDevice, StorageSpec


class TestStorageSpec:
    def test_paper_platform_values(self):
        assert OPTANE_SSD_SPEC.seq_read_bps == config.SSD_SEQ_READ_BPS
        assert OPTANE_SSD_SPEC.random_read_iops == 550_000

    def test_random_read_latency(self):
        assert OPTANE_SSD_SPEC.random_read_latency_s == pytest.approx(
            1 / 550_000
        )

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            StorageSpec("bad", 0, 1, 1, 1)


class TestStorageDevice:
    def test_sequential_read_time_and_accounting(self):
        dev = StorageDevice()
        t = dev.sequential_read_time(config.SSD_SEQ_READ_BPS)
        assert t == pytest.approx(1.0)
        assert dev.bytes_read == config.SSD_SEQ_READ_BPS

    def test_sequential_write_time(self):
        dev = StorageDevice()
        t = dev.sequential_write_time(config.SSD_SEQ_WRITE_BPS // 2)
        assert t == pytest.approx(0.5)

    def test_random_read_time_scales_with_pages(self):
        dev = StorageDevice()
        t1 = dev.random_read_time(1000)
        t2 = dev.random_read_time(2000)
        assert t2 == pytest.approx(2 * t1)

    def test_random_read_concurrency_shares_iops(self):
        dev = StorageDevice()
        alone = dev.random_read_time(1000, concurrency=1)
        shared = dev.random_read_time(1000, concurrency=4)
        assert shared == pytest.approx(4 * alone)

    def test_random_read_accounting(self):
        dev = StorageDevice()
        dev.random_read_time(10)
        assert dev.random_reads == 10
        assert dev.bytes_read == 10 * config.PAGE_SIZE

    def test_reset_counters(self):
        dev = StorageDevice()
        dev.random_read_time(10)
        dev.sequential_write_time(100)
        dev.reset_counters()
        assert dev.bytes_read == dev.bytes_written == 0
        assert dev.random_reads == dev.random_writes == 0

    def test_negative_inputs_rejected(self):
        dev = StorageDevice()
        with pytest.raises(ConfigError):
            dev.sequential_read_time(-1)
        with pytest.raises(ConfigError):
            dev.random_read_time(-1)
        with pytest.raises(ConfigError):
            dev.random_read_time(1, concurrency=0)
