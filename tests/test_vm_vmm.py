"""Tests for VM lifecycle management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.vm.snapshot import ReapSnapshot
from repro.vm.vmm import VMM


@pytest.fixture
def vmm() -> VMM:
    return VMM()


class TestBootAndRun:
    def test_boot_runs_to_completion(self, vmm, tiny_function):
        boot = vmm.boot_and_run(tiny_function, 0, 0)
        assert boot.execution.time_s > 0
        assert boot.vm.n_pages == tiny_function.n_pages
        # DRAM-only: no slow accesses.
        assert boot.execution.counters.slow_accesses == 0

    def test_boot_deterministic(self, vmm, tiny_function):
        a = vmm.boot_and_run(tiny_function, 1, 5)
        b = VMM().boot_and_run(tiny_function, 1, 5)
        assert a.execution.time_s == pytest.approx(b.execution.time_s)


class TestSnapshotCapture:
    def test_capture_copies_versions(self, vmm, tiny_function):
        boot = vmm.boot_and_run(tiny_function, 0, 0)
        snap = vmm.capture_snapshot(boot.vm)
        np.testing.assert_array_equal(snap.page_versions, boot.vm.page_versions)
        # Later mutation of the VM must not change the snapshot.
        boot.vm.page_versions[0] += 1
        assert snap.page_versions[0] != boot.vm.page_versions[0]

    def test_reap_capture_records_ws(self, vmm, tiny_function):
        snap = vmm.capture_reap_snapshot(tiny_function, 2, 0)
        assert isinstance(snap, ReapSnapshot)
        assert snap.ws_pages == tiny_function.ws_pages(2)
        assert snap.snapshot_input == 2


class TestRestoreDispatch:
    def test_auto_dispatch(self, vmm, tiny_function):
        boot = vmm.boot_and_run(tiny_function, 0, 0)
        base = vmm.capture_snapshot(boot.vm)
        reap = vmm.capture_reap_snapshot(tiny_function, 0, 0)
        assert vmm.restore(base).strategy == "lazy"
        assert vmm.restore(reap).strategy == "reap"

    def test_named_strategies(self, vmm, tiny_function):
        boot = vmm.boot_and_run(tiny_function, 0, 0)
        base = vmm.capture_snapshot(boot.vm)
        assert vmm.restore(base, "warm").strategy == "warm"
        assert vmm.restore(base, "lazy").strategy == "lazy"

    def test_unknown_strategy_rejected(self, vmm, tiny_function):
        boot = vmm.boot_and_run(tiny_function, 0, 0)
        base = vmm.capture_snapshot(boot.vm)
        with pytest.raises(ValueError):
            vmm.restore(base, "bogus")

    def test_warm_on_reap_unwraps_base(self, vmm, tiny_function):
        reap = vmm.capture_reap_snapshot(tiny_function, 0, 0)
        r = vmm.restore(reap, "warm")
        assert r.setup_time_s == 0.0
