"""Tests for the PEBS sampler and its pathologies vs DAMON."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProfilingError
from repro.profiling.damon import DamonProfiler
from repro.profiling.pebs import PebsConfig, PebsProfiler
from repro.vm.microvm import EpochRecord


def record(n_pages, pages, counts, duration=0.1):
    return EpochRecord(
        duration_s=duration,
        pages=np.asarray(pages, dtype=np.int64),
        counts=np.asarray(counts, dtype=np.int64),
    )


def pebs(n_pages=8192, seed=3, **cfg) -> PebsProfiler:
    return PebsProfiler(
        n_pages, PebsConfig(**cfg), rng=np.random.default_rng(seed)
    )


class TestPebsSampling:
    def test_sample_rate(self):
        p = pebs(sampling_period=100, drop_rate=0.0)
        s = p.profile([record(8192, [0], [1_000_000])])
        assert s.n_samples == pytest.approx(10_000, rel=0.1)

    def test_drop_rate_loses_records(self):
        lossless = pebs(seed=1, drop_rate=0.0).profile(
            [record(8192, [0], [10_000_000])]
        )
        lossy = pebs(seed=1, drop_rate=0.5).profile(
            [record(8192, [0], [10_000_000])]
        )
        assert lossy.n_samples < lossless.n_samples

    def test_overhead_scales_with_samples(self):
        cfg = dict(sampling_period=100, drop_rate=0.0)
        small = pebs(**cfg).profile([record(8192, [0], [100_000])])
        big = pebs(**cfg).profile([record(8192, [0], [10_000_000])])
        assert big.overhead_s > 10 * small.overhead_s

    def test_empty_invocation_rejected(self):
        with pytest.raises(ProfilingError):
            pebs().profile([])

    def test_invalid_config(self):
        with pytest.raises(ProfilingError):
            PebsConfig(sampling_period=0)
        with pytest.raises(ProfilingError):
            PebsConfig(drop_rate=1.0)


class TestPaperArgument:
    """Section III-C: why TOSS picks DAMON over PEBS."""

    def test_short_functions_starve_pebs(self):
        """A short invocation yields almost no PEBS records at a sampling
        period cheap enough for production."""
        short = [record(8192, list(range(512)), [20] * 512, duration=0.004)]
        s = pebs().profile(short)
        # ~10k accesses at a 1/10007 period: a handful of samples for a
        # 512-page working set.
        assert s.observed_pages < 50

    def test_damon_covers_where_pebs_cannot(self):
        """Same short invocation: DAMON's region view observes the working
        set PEBS misses."""
        pages = list(range(512))
        short = [record(8192, pages, [20] * 512, duration=0.004)]
        pebs_obs = pebs().profile(short).observed_pages
        damon = DamonProfiler(8192, rng=np.random.default_rng(3))
        damon_snap = None
        for _ in range(4):
            damon_snap = damon.profile(short)
        damon_obs = int((damon_snap.page_values() > 0).sum())
        assert damon_obs > 4 * max(pebs_obs, 1)

    def test_pebs_cheap_only_at_low_frequency(self):
        """Raising the sampling frequency to fix coverage explodes the
        overhead — the paper's 'unsuitable for short functions' point."""
        trace = [record(8192, list(range(2048)), [500] * 2048, duration=0.1)]
        slow_period = pebs(sampling_period=10_007).profile(trace)
        fast_period = pebs(sampling_period=97).profile(trace)
        assert fast_period.observed_pages > slow_period.observed_pages
        # But the overhead becomes a large fraction of the 100 ms run.
        assert fast_period.overhead_s > 20 * slow_period.overhead_s
        assert fast_period.overhead_s > 0.01
