"""Tests for predictive pre-warming."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.platform.arrival import fixed_arrivals, poisson_arrivals
from repro.platform.prewarm import ArrivalPredictor, PrewarmPolicy


class TestArrivalPredictor:
    def test_needs_two_samples(self):
        p = ArrivalPredictor()
        assert p.predict_next() is None
        p.observe(1.0)
        assert p.predict_next() is None
        p.observe(2.0)
        assert p.predict_next() == pytest.approx(3.0)

    def test_fixed_interval_prediction_exact(self):
        p = ArrivalPredictor()
        for t in fixed_arrivals(0.5, 5.0):
            p.observe(float(t))
        assert p.predict_next() == pytest.approx(5.0, abs=1e-9)

    def test_ewma_adapts_to_rate_change(self):
        p = ArrivalPredictor(alpha=0.5)
        for t in (0.0, 1.0, 2.0):
            p.observe(t)
        for t in (2.1, 2.2, 2.3, 2.4):
            p.observe(t)
        gap = p.predict_next() - 2.4
        assert gap < 0.3  # converging toward the new 0.1 s cadence

    def test_non_monotone_rejected(self):
        p = ArrivalPredictor()
        p.observe(5.0)
        with pytest.raises(SchedulerError):
            p.observe(4.0)

    def test_invalid_alpha(self):
        with pytest.raises(SchedulerError):
            ArrivalPredictor(alpha=0.0)


class TestPrewarmPolicy:
    def drive(self, arrivals, setup_s=0.01) -> PrewarmPolicy:
        policy = PrewarmPolicy()
        for t in arrivals:
            policy.would_hide_setup("f", float(t), setup_s)
            policy.observe("f", float(t))
        return policy

    def test_timer_functions_prewarm_perfectly(self):
        policy = self.drive(fixed_arrivals(1.0, 30.0))
        # After the warm-up samples, every arrival is predicted.
        assert policy.hit_rate > 0.85

    def test_poisson_prewarms_partially(self, rng):
        times = poisson_arrivals(2.0, 60.0, rng)
        policy = self.drive(times)
        assert 0.0 < policy.hit_rate < 0.95

    def test_timer_beats_poisson(self, rng):
        timer = self.drive(fixed_arrivals(0.5, 30.0))
        poisson = self.drive(poisson_arrivals(2.0, 30.0, rng))
        assert timer.hit_rate > poisson.hit_rate

    def test_huge_setup_cannot_hide(self):
        policy = self.drive(fixed_arrivals(1.0, 20.0), setup_s=10.0)
        assert policy.hit_rate == 0.0

    def test_platform_integration_timer_workload(self, tiny_function):
        """Timer-driven tiered invocations see zero setup latency."""
        from repro.core.toss import Phase, TossConfig
        from repro.platform import ServerlessPlatform

        policy = PrewarmPolicy()
        platform = ServerlessPlatform(
            n_cores=4,
            toss_cfg=TossConfig(convergence_window=3,
                                min_profiling_invocations=3),
            prewarm=policy,
        )
        platform.deploy(tiny_function)
        log = platform.serve([(0.5 * i, "tiny", 3) for i in range(40)])
        tiered = [e for e in log if e.phase is Phase.TIERED]
        hidden = [e for e in tiered if e.setup_time_s == 0.0]
        assert tiered and len(hidden) == len(tiered)
        # Profiling-phase requests never count as pre-warm hits.
        profiling = [e for e in log if e.phase is not Phase.TIERED]
        assert all(e.setup_time_s > 0 for e in profiling[1:])

    def test_early_arrival_misses(self):
        policy = PrewarmPolicy(margin_s=0.05)
        policy.observe("f", 0.0)
        policy.observe("f", 10.0)
        # Predicted next: 20.0; an arrival at 12.0 beats the restore
        # (launched at 19.95, it has not even started).
        assert not policy.would_hide_setup("f", 12.0, setup_time_s=9.0)
        # An arrival right on schedule is hidden: the restore launched at
        # 19.95 and took 5 ms.
        assert policy.would_hide_setup("f", 20.0, setup_time_s=0.005)


class TestHorizonSparseTraffic:
    """The horizon must bound the prediction's lead time from the last
    *observed* arrival.  The old code compared the prediction against the
    arrival being judged — a difference of roughly zero whenever the
    request showed up on schedule — so the horizon never suppressed
    anything and sparse timers were counted as pre-warm hits the platform
    would never actually have paid memory to make."""

    def test_gap_beyond_horizon_is_never_a_hit(self):
        policy = PrewarmPolicy(horizon_s=120.0)
        # Perfectly regular but sparse timer: 300 s between arrivals.
        policy.observe("f", 0.0)
        policy.observe("f", 300.0)
        # The prediction (600 s) is 300 s of speculative lead time —
        # beyond the horizon, so the on-schedule arrival must miss even
        # though the restore itself would have been trivially fast.
        assert not policy.would_hide_setup("f", 600.0, setup_time_s=0.005)
        assert policy.hits == 0
        assert policy.misses == 1

    def test_sparse_timer_workload_hides_nothing(self):
        policy = PrewarmPolicy(horizon_s=120.0)
        for t in fixed_arrivals(200.0, 2000.0):
            policy.would_hide_setup("f", float(t), 0.005)
            policy.observe("f", float(t))
        assert policy.hit_rate == 0.0

    def test_gap_within_horizon_still_hits(self):
        policy = PrewarmPolicy(horizon_s=120.0)
        policy.observe("f", 0.0)
        policy.observe("f", 60.0)
        # 60 s of lead time is inside the horizon: the fix must not
        # over-suppress dense-but-not-rapid timers.
        assert policy.would_hide_setup("f", 120.0, setup_time_s=0.01)
