"""Tests for tier specifications and the two-tier memory system."""

from __future__ import annotations

import math

import pytest

from repro import config
from repro.errors import ConfigError
from repro.memsim.tiers import (
    DEFAULT_MEMORY_SYSTEM,
    DRAM_SPEC,
    PMEM_SPEC,
    MemorySystem,
    Tier,
    TierSpec,
)


class TestTierSpec:
    def test_default_platform_values(self):
        assert DRAM_SPEC.load_latency_s == pytest.approx(80e-9)
        assert PMEM_SPEC.load_latency_s == pytest.approx(300e-9)
        assert PMEM_SPEC.store_latency_s > PMEM_SPEC.load_latency_s

    def test_random_penalty_blend(self):
        lat0 = PMEM_SPEC.effective_load_latency_s(0.0)
        lat1 = PMEM_SPEC.effective_load_latency_s(1.0)
        lat_half = PMEM_SPEC.effective_load_latency_s(0.5)
        assert lat0 == pytest.approx(PMEM_SPEC.load_latency_s)
        assert lat1 == pytest.approx(
            PMEM_SPEC.load_latency_s * PMEM_SPEC.random_penalty
        )
        assert lat0 < lat_half < lat1

    def test_dram_random_penalty_is_neutral(self):
        assert DRAM_SPEC.effective_load_latency_s(1.0) == pytest.approx(
            DRAM_SPEC.load_latency_s
        )

    def test_store_blend(self):
        all_loads = PMEM_SPEC.effective_access_latency_s(0.0, 0.0)
        all_stores = PMEM_SPEC.effective_access_latency_s(0.0, 1.0)
        assert all_loads == pytest.approx(PMEM_SPEC.load_latency_s)
        assert all_stores == pytest.approx(PMEM_SPEC.store_latency_s)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ConfigError):
            PMEM_SPEC.effective_load_latency_s(1.5)
        with pytest.raises(ConfigError):
            PMEM_SPEC.effective_access_latency_s(0.0, -0.1)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("load_latency_s", 0.0),
            ("store_latency_s", -1.0),
            ("bandwidth_bps", 0.0),
            ("cost_per_mb", 0.0),
            ("access_bytes", 0),
        ],
    )
    def test_nonpositive_characteristics_rejected(self, field, value):
        kwargs = dict(
            name="bad",
            load_latency_s=1e-7,
            store_latency_s=1e-7,
            bandwidth_bps=1e9,
            access_bytes=64,
            cost_per_mb=1.0,
        )
        kwargs[field] = value
        with pytest.raises(ConfigError):
            TierSpec(**kwargs)

    def test_random_penalty_below_one_rejected(self):
        with pytest.raises(ConfigError):
            TierSpec(
                name="bad",
                load_latency_s=1e-7,
                store_latency_s=1e-7,
                bandwidth_bps=1e9,
                access_bytes=64,
                cost_per_mb=1.0,
                random_penalty=0.5,
            )

    def test_ops_caps_default_unbounded(self):
        assert math.isinf(DRAM_SPEC.read_ops_cap)
        assert PMEM_SPEC.read_ops_cap == config.PMEM_READ_OPS_CAP


class TestMemorySystem:
    def test_cost_ratio_is_paper_value(self):
        assert DEFAULT_MEMORY_SYSTEM.cost_ratio == pytest.approx(2.5)
        assert DEFAULT_MEMORY_SYSTEM.optimal_normalized_cost == pytest.approx(0.4)

    def test_latency_ratio(self):
        assert DEFAULT_MEMORY_SYSTEM.latency_ratio() == pytest.approx(300 / 80)

    def test_spec_lookup(self):
        assert DEFAULT_MEMORY_SYSTEM.spec(Tier.FAST) is DRAM_SPEC
        assert DEFAULT_MEMORY_SYSTEM.spec(Tier.SLOW) is PMEM_SPEC
        assert DEFAULT_MEMORY_SYSTEM.spec(1) is PMEM_SPEC

    def test_access_latencies_indexable_by_tier(self):
        lat = DEFAULT_MEMORY_SYSTEM.access_latencies()
        assert lat[Tier.FAST] < lat[Tier.SLOW]

    def test_slow_faster_than_fast_rejected(self):
        with pytest.raises(ConfigError):
            MemorySystem(fast=PMEM_SPEC, slow=DRAM_SPEC)

    def test_tier_enum_values(self):
        assert int(Tier.FAST) == 0 and int(Tier.SLOW) == 1
