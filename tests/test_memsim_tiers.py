"""Tests for tier specifications and the two-tier memory system."""

from __future__ import annotations

import math

import pytest

from repro import config
from repro.errors import ConfigError
from repro.memsim.tiers import (
    DEFAULT_MEMORY_SYSTEM,
    DRAM_SPEC,
    PMEM_SPEC,
    MemorySystem,
    Tier,
    TierSpec,
)


class TestTierSpec:
    def test_default_platform_values(self):
        assert DRAM_SPEC.load_latency_s == pytest.approx(80e-9)
        assert PMEM_SPEC.load_latency_s == pytest.approx(300e-9)
        assert PMEM_SPEC.store_latency_s > PMEM_SPEC.load_latency_s

    def test_random_penalty_blend(self):
        lat0 = PMEM_SPEC.effective_load_latency_s(0.0)
        lat1 = PMEM_SPEC.effective_load_latency_s(1.0)
        lat_half = PMEM_SPEC.effective_load_latency_s(0.5)
        assert lat0 == pytest.approx(PMEM_SPEC.load_latency_s)
        assert lat1 == pytest.approx(
            PMEM_SPEC.load_latency_s * PMEM_SPEC.random_penalty
        )
        assert lat0 < lat_half < lat1

    def test_dram_random_penalty_is_neutral(self):
        assert DRAM_SPEC.effective_load_latency_s(1.0) == pytest.approx(
            DRAM_SPEC.load_latency_s
        )

    def test_store_blend(self):
        all_loads = PMEM_SPEC.effective_access_latency_s(0.0, 0.0)
        all_stores = PMEM_SPEC.effective_access_latency_s(0.0, 1.0)
        assert all_loads == pytest.approx(PMEM_SPEC.load_latency_s)
        assert all_stores == pytest.approx(PMEM_SPEC.store_latency_s)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ConfigError):
            PMEM_SPEC.effective_load_latency_s(1.5)
        with pytest.raises(ConfigError):
            PMEM_SPEC.effective_access_latency_s(0.0, -0.1)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("load_latency_s", 0.0),
            ("store_latency_s", -1.0),
            ("bandwidth_bps", 0.0),
            ("cost_per_mb", -0.5),
            ("access_bytes", 0),
        ],
    )
    def test_nonpositive_characteristics_rejected(self, field, value):
        kwargs = dict(
            name="bad",
            load_latency_s=1e-7,
            store_latency_s=1e-7,
            bandwidth_bps=1e9,
            access_bytes=64,
            cost_per_mb=1.0,
        )
        kwargs[field] = value
        with pytest.raises(ConfigError):
            TierSpec(**kwargs)

    def test_random_penalty_below_one_rejected(self):
        with pytest.raises(ConfigError):
            TierSpec(
                name="bad",
                load_latency_s=1e-7,
                store_latency_s=1e-7,
                bandwidth_bps=1e9,
                access_bytes=64,
                cost_per_mb=1.0,
                random_penalty=0.5,
            )

    def test_ops_caps_default_unbounded(self):
        assert math.isinf(DRAM_SPEC.read_ops_cap)
        assert PMEM_SPEC.read_ops_cap == config.PMEM_READ_OPS_CAP


class TestMemorySystem:
    def test_cost_ratio_is_paper_value(self):
        assert DEFAULT_MEMORY_SYSTEM.cost_ratio == pytest.approx(2.5)
        assert DEFAULT_MEMORY_SYSTEM.optimal_normalized_cost == pytest.approx(0.4)

    def test_latency_ratio(self):
        assert DEFAULT_MEMORY_SYSTEM.latency_ratio() == pytest.approx(300 / 80)

    def test_spec_lookup(self):
        assert DEFAULT_MEMORY_SYSTEM.spec(Tier.FAST) is DRAM_SPEC
        assert DEFAULT_MEMORY_SYSTEM.spec(Tier.SLOW) is PMEM_SPEC
        assert DEFAULT_MEMORY_SYSTEM.spec(1) is PMEM_SPEC

    def test_access_latencies_indexable_by_tier(self):
        lat = DEFAULT_MEMORY_SYSTEM.access_latencies()
        assert lat[Tier.FAST] < lat[Tier.SLOW]

    def test_slow_faster_than_fast_rejected(self):
        with pytest.raises(ConfigError):
            MemorySystem(fast=PMEM_SPEC, slow=DRAM_SPEC)

    def test_tier_enum_values(self):
        assert int(Tier.FAST) == 0 and int(Tier.SLOW) == 1


def _spec(name, load, cost, **kw):
    kwargs = dict(
        name=name,
        load_latency_s=load,
        store_latency_s=load,
        bandwidth_bps=1e9,
        access_bytes=64,
        cost_per_mb=cost,
    )
    kwargs.update(kw)
    return TierSpec(**kwargs)


class TestZeroCostTiers:
    """Satellite regression: cost_per_mb == 0 is a meaningful limit."""

    def test_zero_cost_spec_allowed(self):
        spec = _spec("free", 1e-6, 0.0)
        assert spec.cost_per_mb == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            _spec("bad", 1e-6, -1.0)

    def test_cost_ratio_raises_typed_error_on_free_slow_tier(self):
        memory = MemorySystem(fast=DRAM_SPEC, slow=_spec("free", 1e-6, 0.0))
        with pytest.raises(ConfigError, match="free"):
            memory.cost_ratio

    def test_optimal_normalized_cost_zero_limit(self):
        memory = MemorySystem(fast=DRAM_SPEC, slow=_spec("free", 1e-6, 0.0))
        assert memory.optimal_normalized_cost == 0.0


class TestNTierChain:
    """Satellite regression: full-chain ordering validation."""

    def _mid(self, load=150e-9, cost=1.5):
        return _spec("mid", load, cost)

    def test_ordered_three_tier_accepted(self):
        memory = MemorySystem(fast=DRAM_SPEC, slow=PMEM_SPEC, middle=(self._mid(),))
        assert memory.n_tiers == 3
        assert memory.tier_ids == (0, 2, 1)
        assert [t.name for t in memory.chain] == [
            DRAM_SPEC.name,
            "mid",
            PMEM_SPEC.name,
        ]

    def test_misordered_middle_faster_than_fast_rejected(self):
        with pytest.raises(ConfigError, match="faster"):
            MemorySystem(
                fast=DRAM_SPEC,
                slow=PMEM_SPEC,
                middle=(self._mid(load=10e-9),),
            )

    def test_misordered_middle_pricier_than_fast_rejected(self):
        with pytest.raises(ConfigError, match="costs more"):
            MemorySystem(
                fast=DRAM_SPEC,
                slow=PMEM_SPEC,
                middle=(self._mid(cost=DRAM_SPEC.cost_per_mb * 2),),
            )

    def test_misordered_slow_cheaper_than_middle_detected(self):
        # A middle tier cheaper than the slow tier below it breaks the
        # priciest-first chain even though both two-tier pairs are fine.
        with pytest.raises(ConfigError, match="costs more"):
            MemorySystem(
                fast=DRAM_SPEC,
                slow=PMEM_SPEC,
                middle=(_spec("cheap-mid", 150e-9, 0.5),),
            )

    def test_two_tier_error_messages_preserved(self):
        with pytest.raises(ConfigError, match="slow tier must not be faster"):
            MemorySystem(fast=PMEM_SPEC, slow=DRAM_SPEC)

    def test_spec_lookup_by_chain_id(self):
        mid = self._mid()
        memory = MemorySystem(fast=DRAM_SPEC, slow=PMEM_SPEC, middle=(mid,))
        assert memory.spec(2) is mid
        assert memory.spec(Tier.FAST) is DRAM_SPEC
        assert memory.spec(Tier.SLOW) is PMEM_SPEC
        with pytest.raises(ConfigError, match="unknown tier id"):
            memory.spec(3)

    def test_price_relative_in_chain(self):
        memory = MemorySystem(
            fast=DRAM_SPEC, slow=PMEM_SPEC, middle=(self._mid(cost=1.25),)
        )
        assert memory.price_relative(Tier.FAST) == pytest.approx(1.0)
        assert memory.price_relative(2) == pytest.approx(
            1.25 / DRAM_SPEC.cost_per_mb
        )

    def test_access_latency_by_id_layout(self):
        mid = self._mid()
        memory = MemorySystem(fast=DRAM_SPEC, slow=PMEM_SPEC, middle=(mid,))
        lat = memory.access_latency_by_id()
        assert lat[0] == pytest.approx(DRAM_SPEC.load_latency_s)
        assert lat[1] == pytest.approx(PMEM_SPEC.load_latency_s)
        assert lat[2] == pytest.approx(mid.load_latency_s)

    def test_two_tier_chain_defaults(self):
        assert DEFAULT_MEMORY_SYSTEM.middle == ()
        assert DEFAULT_MEMORY_SYSTEM.n_tiers == 2
        assert DEFAULT_MEMORY_SYSTEM.tier_ids == (0, 1)

    def test_ladder_projection(self):
        memory = MemorySystem(fast=DRAM_SPEC, slow=PMEM_SPEC, middle=(self._mid(),))
        ladder = memory.ladder()
        assert ladder.n_tiers == 3
        assert ladder.tiers == memory.chain
