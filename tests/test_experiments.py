"""Smoke tests for the experiment harnesses (fast subsets)."""

from __future__ import annotations

import repro.experiments as ex
from repro.functions import INPUT_LABELS


class TestFig1:
    def test_runs_and_reports_growth(self):
        res = ex.fig1_ws_characterization.run(
            "json_load_dump", damon_invocations=3
        )
        ws = [int(res.uffd_masks[l].sum()) for l in INPUT_LABELS]
        # Working set grows with the input.
        assert ws == sorted(ws)
        assert len(res.table.rows) == 4
        # Different inputs have different (but overlapping) patterns.
        overlap = res.pattern_overlap("I", "IV")
        assert 0.0 < overlap < 1.0


class TestFig2:
    def test_subset_shapes(self):
        res = ex.fig2_slow_tier_slowdown.run(iterations=2)
        assert res.slowdowns[("compress", "IV")] < 1.05
        assert res.slowdowns[("pagerank", "IV")] > 1.5
        worst = res.worst_functions(5)
        assert "pagerank" in worst and "matmul" in worst
        assert "compress" not in worst


class TestFig3:
    def test_reap_input_sensitivity_subset(self):
        res = ex.fig3_reap_input_sensitivity.run(
            function_names=["image_processing"], iterations=1
        )
        # Divergent snapshots are never better than the diagonal on avg.
        assert res.overall_mean >= 0.95
        assert res.overall_max > res.overall_mean


class TestFig5AndTable2:
    def test_costs_and_offload(self):
        names = ["matmul", "compress"]
        r5 = ex.fig5_min_cost.run(function_names=names)
        assert 0.4 <= min(r5.costs.values()) <= max(r5.costs.values()) <= 1.0
        r2 = ex.table2_slow_tier_pct.run(function_names=names)
        assert r2.slow_pct["compress"] > 95.0
        assert 80.0 < r2.slow_pct["matmul"] < 99.0


class TestFig6:
    def test_curves_monotone(self):
        res = ex.fig6_incremental_bins.run(function_names=("matmul",))
        for label in INPUT_LABELS:
            pts = res.curves[("matmul", label)]
            sds = [p[0] for p in pts]
            assert all(b >= a - 1e-9 for a, b in zip(sds, sds[1:]))
        assert res.slowdown_monotone_in_input("matmul")


class TestFig7:
    def test_setup_shape(self):
        res = ex.fig7_setup_time.run(function_names=["pagerank", "pyaes"])
        assert res.reap_max["pagerank"] > 10 * res.toss["pagerank"]
        # Tiny-WS function: REAP's best setup beats TOSS (paper's caveat).
        assert res.reap_min["pyaes"] < res.toss["pyaes"]


class TestFig8:
    def test_invocation_time_shape(self):
        res = ex.fig8_invocation_time.run(
            function_names=["lr_serving"], iterations=1
        )
        assert res.toss_mean >= 1.0
        assert res.reap_worst >= res.reap_mean


class TestFig9:
    def test_scalability_shape(self):
        res = ex.fig9_scalability.run(
            function_names=["image_processing"],
            concurrency_levels=(1, 10),
        )
        assert res.slowdown[("reap-worst", "image_processing", 10)] > (
            res.slowdown[("reap-worst", "image_processing", 1)]
        )
        assert res.slowdown[("dram", "image_processing", 10)] < 1.3


class TestSec6C3:
    def test_variance_small_for_stable_function(self):
        res = ex.sec6c3_snapshot_variance.run(function_names=["matmul"])
        assert res.mean_snapshot_variance() < 25.0
        assert res.mean_placement_variance() < 25.0


class TestAblations:
    def test_bin_count_table(self):
        table = ex.ablations.ablate_bin_count("matmul", bin_counts=(2, 10))
        costs = table.column("cost")
        # More bins => finer placement => no worse cost.
        assert costs[1] <= costs[0] + 0.02

    def test_cost_ratio_moves_offloading(self):
        table = ex.ablations.ablate_cost_ratio("matmul", ratios=(1.5, 8.0))
        slow = table.column("slow %")
        assert slow[1] >= slow[0]
