"""Bit-identity tests for the vectorized batch event kernel.

The batch fast path (:mod:`repro.sim.batch`, :mod:`repro.sim.batchexec`,
the vectorized contention replay, ``EventLoop.schedule_batch`` and
``TokenBucket.consume_batch``) promises *bit-identical* results to the
coroutine/scalar code it shortcuts.  These tests pin that contract:

* hypothesis properties drive randomized cohorts — including exact
  same-timestamp ties and token-bucket contention — through both engines
  and require identical drain orders and identical floats;
* the pre-change scalar replay loop is pinned verbatim as a reference
  and the vectorized replay must reproduce its samples exactly;
* ``invoke_batch`` on real systems must reproduce the scalar
  ``invoke`` loop field for field, including when answered from the
  per-system cohort memo.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memsim.bandwidth import RESOURCES, ContentionModel, TierDemand
from repro.memsim.storage import OPTANE_SSD_SPEC
from repro.memsim.tiers import DEFAULT_MEMORY_SYSTEM
from repro.sim.batch import (
    SampleBuffer,
    heap_drain_order,
    segment_fold_left,
    segment_sums_int,
)
from repro.sim.contention import EventScheduler, UtilizationSample, _summarize
from repro.sim.loop import EventLoop
from repro.sim.resources import TokenBucket

# -- strategies ----------------------------------------------------------------

TIMES = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=40,
)
PRIORITIES = st.integers(min_value=0, max_value=3)
AMOUNTS = st.lists(
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


def _with_ties(times: list[float]) -> list[float]:
    """Duplicate half the cohort so exact same-timestamp ties occur."""
    return times + times[: len(times) // 2]


# -- drain order ---------------------------------------------------------------


class TestDrainOrder:
    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=50.0, allow_nan=False), PRIORITIES), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_lexsort_matches_heap_pops(self, cohort):
        """heap_drain_order == the coroutine loop's actual pop sequence."""
        cohort = cohort + cohort[: len(cohort) // 2]  # exact ties
        loop = EventLoop()
        fired: list[int] = []
        entries = []
        for i, (t, prio) in enumerate(cohort):
            entries.append(
                loop.schedule_at(
                    t, (lambda idx: lambda _now: fired.append(idx))(i),
                    priority=prio,
                )
            )
        loop.run()
        order = heap_drain_order(
            np.array([t for t, _ in cohort], dtype=np.float64),
            np.array([p for _, p in cohort], dtype=np.int64),
            np.array([e.seq for e in entries], dtype=np.int64),
        )
        assert fired == list(order)

    @given(TIMES)
    @settings(max_examples=60, deadline=None)
    def test_schedule_batch_matches_scalar_scheduling(self, times):
        """Batched and per-call scheduling fire identically, ties FIFO."""
        times = _with_ties(times)
        scalar_loop = EventLoop()
        scalar_fired: list[tuple[int, float]] = []
        seq = {"i": 0}

        def scalar_cb(now: float) -> None:
            scalar_fired.append((seq["i"], now))
            seq["i"] += 1

        for t in times:
            scalar_loop.schedule_at(t, scalar_cb, priority=2, category="a")
        scalar_loop.run()

        batch_loop = EventLoop()
        batch_fired: list[tuple[int, float]] = []
        bseq = {"i": 0}

        def batch_cb(now: float) -> None:
            batch_fired.append((bseq["i"], now))
            bseq["i"] += 1

        entries = batch_loop.schedule_batch(
            times, batch_cb, priority=2, category="a"
        )
        assert len(entries) == len(times)
        assert batch_loop.live_count("a") == len(times)
        batch_loop.run()
        assert batch_fired == scalar_fired
        assert batch_loop.now == scalar_loop.now

    def test_schedule_batch_rejects_past_and_bad_shapes(self):
        loop = EventLoop(start_s=5.0)
        with pytest.raises(ConfigError):
            loop.schedule_batch([6.0, 4.0], lambda _n: None)
        with pytest.raises(ConfigError):
            loop.schedule_batch(np.zeros((2, 2)), lambda _n: None)
        assert loop.schedule_batch([], lambda _n: None) == []

    def test_heap_drain_order_shape_mismatch(self):
        with pytest.raises(ConfigError):
            heap_drain_order(
                np.zeros(3), np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=np.int64),
            )


# -- token bucket --------------------------------------------------------------


class TestConsumeBatch:
    @given(AMOUNTS, st.floats(min_value=0.1, max_value=200.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_matches_scalar_consume_chain(self, amounts, rate):
        """consume_batch == consume called per amount, bit for bit —
        including contended draws that leave the bucket in debt."""
        loop_a, loop_b = EventLoop(), EventLoop()
        scalar = TokenBucket("b", rate, loop=loop_a)
        batch = TokenBucket("b", rate, loop=loop_b)
        scalar_waits = [scalar.consume(a) for a in amounts]
        batch_waits = batch.consume_batch(amounts)
        assert list(batch_waits) == scalar_waits
        assert batch.tokens == scalar.tokens
        assert batch.consumed_total == scalar.consumed_total

    def test_rejects_negative_and_bad_shape(self):
        loop = EventLoop()
        bucket = TokenBucket("b", 10.0, loop=loop)
        with pytest.raises(ConfigError):
            bucket.consume_batch([1.0, -2.0])
        with pytest.raises(ConfigError):
            bucket.consume_batch(np.zeros((2, 2)))
        assert bucket.consume_batch([]).size == 0
        assert bucket.tokens == 10.0

    @given(AMOUNTS, st.floats(min_value=0.5, max_value=50.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_contended_waits_order_processes_identically(self, amounts, rate):
        """Processes delayed by bucket waits finish in the same order
        whether the waits came from the scalar or the batch draw."""

        def run(waits):
            loop = EventLoop()
            finished: list[int] = []

            def body(i, wait):
                def _proc():
                    from repro.sim.loop import Delay

                    yield Delay(wait)
                    finished.append(i)

                return _proc()

            for i, w in enumerate(waits):
                loop.spawn(body(i, float(w)), name=f"p{i}")
            loop.run()
            return finished

        loop_a, loop_b = EventLoop(), EventLoop()
        scalar = TokenBucket("b", rate, loop=loop_a)
        batch = TokenBucket("b", rate, loop=loop_b)
        scalar_order = run([scalar.consume(a) for a in amounts])
        batch_order = run(batch.consume_batch(amounts))
        assert scalar_order == batch_order


# -- segment folds -------------------------------------------------------------

RAGGED = st.lists(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=0,
        max_size=8,
    ),
    min_size=1,
    max_size=12,
)


class TestSegmentFolds:
    @given(RAGGED)
    @settings(max_examples=80, deadline=None)
    def test_fold_left_matches_scalar_accumulation(self, segments):
        values = np.array(
            [x for seg in segments for x in seg], dtype=np.float64
        )
        ptr = np.zeros(len(segments) + 1, dtype=np.int64)
        np.cumsum([len(s) for s in segments], out=ptr[1:])
        got = segment_fold_left(values, ptr)
        for i, seg in enumerate(segments):
            acc = 0.0
            for x in seg:
                acc += x
            assert got[i] == acc

    @given(RAGGED)
    @settings(max_examples=80, deadline=None)
    def test_int_sums_exact(self, segments):
        ints = [[int(x) for x in seg] for seg in segments]
        values = np.array([x for seg in ints for x in seg], dtype=np.int64)
        ptr = np.zeros(len(ints) + 1, dtype=np.int64)
        np.cumsum([len(s) for s in ints], out=ptr[1:])
        got = segment_sums_int(values, ptr)
        assert list(got) == [sum(seg) for seg in ints]


# -- contention replay ---------------------------------------------------------


def _scalar_replay(model, demands, times, inflation):
    """The pre-vectorization event-loop replay, pinned verbatim."""
    loop = EventLoop()
    capacities = model.capacities
    active_rate = {r: 0.0 for r in RESOURCES}
    samples: list[UtilizationSample] = []

    def sample(_now):
        for r in RESOURCES:
            samples.append(
                UtilizationSample(
                    time_s=loop.now,
                    resource=r,
                    offered_rho=active_rate[r] / capacities[r],
                    inflation=inflation[r],
                )
            )

    def finish(delta, t):
        def _fire(_now):
            for r in RESOURCES:
                active_rate[r] -= delta[r]
            sample(_now)

        loop.schedule_at(t, _fire)

    for demand, t in zip(demands, times):
        work = demand._stalls_and_work()
        denom = max(t, 1e-12)
        delta = {r: work[r][1] / denom for r in RESOURCES}
        for r in RESOURCES:
            active_rate[r] += delta[r]
        finish(delta, t)
    sample(loop.now)
    loop.run()
    return tuple(samples)


DEMANDS = st.lists(
    st.builds(
        TierDemand,
        cpu_time_s=st.floats(min_value=1e-4, max_value=0.5, allow_nan=False),
        slow_read_stall_s=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
        slow_read_ops=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        uffd_stall_s=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
        uffd_ops=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    ),
    min_size=1,
    max_size=16,
)


class TestReplayIdentity:
    @given(DEMANDS)
    @settings(max_examples=40, deadline=None)
    def test_vectorized_replay_matches_scalar(self, demands):
        demands = demands + demands[: len(demands) // 2]  # tie times
        model = ContentionModel(DEFAULT_MEMORY_SYSTEM, OPTANE_SSD_SPEC)
        engine = EventScheduler(model)
        times, inflation = model._solve(demands)
        reference = _scalar_replay(model, demands, times, inflation)
        got_times, got_infl = engine.run_synchronized(demands)
        assert got_times == times
        assert got_infl == dict(inflation)
        assert engine.utilization_summary() == _summarize(reference)
        assert engine.last_samples == reference
        # After materialization the summary comes from the tuple path.
        assert engine.utilization_summary() == _summarize(reference)

    def test_sample_buffer_round_trip(self):
        buf = SampleBuffer(3)
        buf.append_event(0.0, np.array([0.1] * 5), np.array([1.0] * 5))
        buf.fill_events(
            np.array([1.0, 2.0]),
            np.full((2, 5), 0.25),
            np.full((2, 5), 1.5),
        )
        assert buf.n_events == 3 and len(buf) == 15
        samples = buf.to_samples()
        assert [s.resource for s in samples[:5]] == list(RESOURCES)
        assert buf.summarize() == _summarize(samples)

    def test_empty_buffer_summary(self):
        assert SampleBuffer(0).summarize() == _summarize(())


# -- batch invoke --------------------------------------------------------------


def _assert_outcomes_identical(scalar, batch):
    assert len(scalar) == len(batch)
    for a, b in zip(scalar, batch):
        assert (a.system, a.input_index, a.seed) == (
            b.system,
            b.input_index,
            b.seed,
        )
        assert a.setup_time_s == b.setup_time_s
        for f in dataclasses.fields(a.execution.counters):
            va = getattr(a.execution.counters, f.name)
            vb = getattr(b.execution.counters, f.name)
            assert va == vb and type(va) is type(vb), f.name
        for f in dataclasses.fields(a.execution.demand):
            va = getattr(a.execution.demand, f.name)
            vb = getattr(b.execution.demand, f.name)
            assert va == vb and type(va) is type(vb), f.name
        assert a.execution.label == b.execution.label
        assert len(a.execution.epoch_records) == len(b.execution.epoch_records)
        for ra, rb in zip(a.execution.epoch_records, b.execution.epoch_records):
            assert ra.duration_s == rb.duration_s
            assert (ra.pages == rb.pages).all()
            assert (ra.counts == rb.counts).all()


@pytest.mark.parametrize("system_kind", ["dram", "toss", "reap"])
def test_invoke_batch_bit_identical(system_kind):
    """invoke_batch == the scalar invoke loop, twice (second from memo)."""
    from repro.experiments.common import dram_cached, reap_cached, toss_cached

    if system_kind == "dram":
        system = dram_cached("float_operation")
    elif system_kind == "toss":
        system = toss_cached("float_operation")
    else:
        system = reap_cached("float_operation", 3)
    seeds = list(range(4))
    scalar = [system.invoke(1, s) for s in seeds]
    _assert_outcomes_identical(scalar, system.invoke_batch(1, seeds))
    # Second call answers from the per-system cohort memo.
    _assert_outcomes_identical(scalar, system.invoke_batch(1, seeds))
    # Mutating a returned counters object must not poison the memo.
    tainted = system.invoke_batch(1, seeds)
    tainted[0].execution.counters.cpu_time_s = -1.0
    _assert_outcomes_identical(scalar, system.invoke_batch(1, seeds))
