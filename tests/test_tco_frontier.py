"""Tests for the TCO-vs-slowdown frontier experiment."""

from __future__ import annotations

import pytest

from repro.experiments import tco_frontier


@pytest.fixture(scope="module")
def result():
    return tco_frontier.run(
        function_names=["float_operation"],
        slowdown_thresholds=(0.05, 0.30),
    )


class TestFrontierShape:
    def test_dram_only_endpoint_normalizes_to_one(self, result):
        assert result.dram_only_cost == 1.0
        anchor = result.table.rows[0]
        assert anchor[0] == "dram-only"
        assert anchor[2] == 1.0

    def test_one_point_per_config_and_budget(self, result):
        configs = [name for name, _ in tco_frontier.default_configs()]
        assert len(result.points) == len(configs) * 2
        seen = {(p.config, p.threshold) for p in result.points}
        assert len(seen) == len(result.points)

    def test_slowdowns_respect_budget(self, result):
        for p in result.points:
            assert p.slowdown <= 1.0 + p.threshold + 1e-9

    def test_costs_between_floor_and_dram(self, result):
        for p in result.points:
            assert 0.0 < p.cost <= 1.0 + 1e-9


class TestFrontierClaims:
    def test_compressed_never_worse_at_fixed_budget(self, result):
        """Seeded search: richer chains are monotone point-by-point."""
        two = {
            p.threshold: p.cost
            for p in result.points
            if p.config == tco_frontier.TWO_TIER_NAME
        }
        for p in result.points:
            if p.config == tco_frontier.TWO_TIER_NAME:
                continue
            assert p.cost <= two[p.threshold] + 1e-9

    def test_best_compressed_beats_best_two_tier(self, result):
        assert result.best_compressed_cost < result.best_two_tier_cost
        assert result.compressed_beats_two_tier

    def test_best_cost_unknown_config_raises(self, result):
        with pytest.raises(KeyError):
            result.best_cost("nope")


class TestDeterminism:
    def test_repeat_run_is_identical(self, result):
        again = tco_frontier.run(
            function_names=["float_operation"],
            slowdown_thresholds=(0.05, 0.30),
        )
        assert [(p.config, p.threshold, p.cost, p.slowdown) for p in again.points] == [
            (p.config, p.threshold, p.cost, p.slowdown) for p in result.points
        ]
