"""Zero-fault equivalence: the all-zero FaultPlan is invisible.

Installing ``FaultPlan()`` as the session default routes every restore,
storage access, and controller decision through the fault plane — and
must change nothing.  These regressions pin that on the two headline
artifacts: the Figure 7 setup-time experiment and the fleet study.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.experiments import common, fig7_setup_time, fleet_study
from repro.faults import FaultPlan

FUNCTIONS = ["float_operation", "pyaes"]


def _clear_experiment_caches():
    """Force full recomputation so the second run actually goes through
    the installed fault plane instead of returning cached systems."""
    for helper in (
        common.toss_cached,
        common.dram_cached,
        common.reap_cached,
        common.vanilla_cached,
        common.warm_time_cached,
    ):
        helper.cache_clear()


@pytest.fixture(autouse=True)
def fresh_caches():
    _clear_experiment_caches()
    yield
    _clear_experiment_caches()


def test_fig7_setup_time_is_byte_identical_under_zero_plan():
    baseline = fig7_setup_time.run(function_names=FUNCTIONS)
    _clear_experiment_caches()
    with faults.injected(FaultPlan()) as injector:
        zeroed = fig7_setup_time.run(function_names=FUNCTIONS)
        assert injector._draws == {}  # the plane never consumed RNG
    assert zeroed.toss == baseline.toss
    assert zeroed.reap_min == baseline.reap_min
    assert zeroed.reap_avg == baseline.reap_avg
    assert zeroed.reap_max == baseline.reap_max
    assert zeroed.table.rows == baseline.table.rows


def test_fleet_study_is_byte_identical_under_zero_plan():
    kwargs = dict(
        include_extended=False,
        requests_per_function=5,
        function_names=FUNCTIONS,
    )
    baseline = fleet_study.run(**kwargs)
    with faults.injected(FaultPlan()):
        zeroed = fleet_study.run(**kwargs)
    assert zeroed.density == baseline.density
    assert zeroed.savings_fraction == baseline.savings_fraction
    assert zeroed.table.rows == baseline.table.rows
