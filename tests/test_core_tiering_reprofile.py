"""Tests for snapshot tiering and the re-profiling policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reprofile import ReprofilePolicy
from repro.core.tiering import build_tiered_snapshot
from repro.core.analysis import ProfilingAnalyzer
from repro.errors import AnalysisError, SnapshotError
from repro.vm.snapshot import SingleTierSnapshot
from repro.vm.vmm import VMM

from test_core_analysis import profiled_pattern


class TestBuildTieredSnapshot:
    def test_layout_matches_analysis(self, tiny_function):
        pattern = profiled_pattern(tiny_function)
        analysis = ProfilingAnalyzer().analyze(
            pattern, tiny_function.trace(3, 999)
        )
        vmm = VMM()
        boot = vmm.boot_and_run(tiny_function, 3, 0)
        base = vmm.capture_snapshot(boot.vm)
        snap = build_tiered_snapshot(base, analysis, source_inputs=(3,))
        np.testing.assert_array_equal(snap.placement(), analysis.placement)
        assert snap.expected_slowdown == analysis.expected_slowdown
        assert snap.source_inputs == (3,)

    def test_size_mismatch_rejected(self, tiny_function):
        pattern = profiled_pattern(tiny_function)
        analysis = ProfilingAnalyzer().analyze(
            pattern, tiny_function.trace(3, 999)
        )
        wrong = SingleTierSnapshot(
            n_pages=1024, page_versions=np.zeros(1024, dtype=np.uint64)
        )
        with pytest.raises(SnapshotError):
            build_tiered_snapshot(wrong, analysis)


class TestReprofilePolicy:
    def arm(self, policy, overhead_invocations=10, lri=1.0):
        policy.record_profiling(
            overhead_invocations,
            [0.01] * 10,
            latency_lri=lri,
            slowdown_full_slow=0.5,
        )

    def test_equation_2_overhead(self):
        p = ReprofilePolicy()
        p.record_profiling(
            7, [0.1, 0.2], latency_lri=1.0, slowdown_full_slow=0.4
        )
        assert p.profiling_overhead == pytest.approx(7 + 1.1 + 1.2)

    def test_not_armed_never_fires(self):
        p = ReprofilePolicy()
        assert not p.should_reprofile
        with pytest.raises(AnalysisError):
            p.observe(1.0)

    def test_short_invocations_amortise_slowly(self):
        p = ReprofilePolicy(bound=0.0001)
        self.arm(p)
        for _ in range(100):
            p.observe(0.5)  # shorter than the LRI
        assert p.accelerating_factor == 0.0
        assert not p.should_reprofile

    def test_longer_invocations_accelerate(self):
        """Equation 3: invocations beyond the LRI build evidence fast."""
        p = ReprofilePolicy(bound=0.0001)
        self.arm(p, overhead_invocations=10, lri=1.0)
        for _ in range(10):
            p.observe(2.0)  # 2x the LRI, weighted by (1 + SD_slow)
        assert p.accelerating_factor == pytest.approx(10 * 2.0 * 1.5)
        assert p.should_reprofile

    def test_many_iterations_eventually_amortise(self):
        """Equation 4 fires once iterations * bound covers the overhead."""
        p = ReprofilePolicy(bound=0.01)
        p.record_profiling(5, [0.0], latency_lri=1.0, slowdown_full_slow=0.0)
        needed = int((5 + 1) / 0.01)
        for _ in range(needed):
            p.observe(0.1)
        assert p.should_reprofile

    def test_rearming_resets_counters(self):
        p = ReprofilePolicy(bound=0.0001)
        self.arm(p)
        p.observe(2.0)
        self.arm(p)
        assert p.iterations == 0
        assert p.accelerating_factor == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            ReprofilePolicy(bound=0.0)
        p = ReprofilePolicy()
        with pytest.raises(AnalysisError):
            p.record_profiling(-1, [], latency_lri=1.0, slowdown_full_slow=0.0)
        with pytest.raises(AnalysisError):
            p.record_profiling(1, [], latency_lri=0.0, slowdown_full_slow=0.0)
