"""Cross-cutting property tests on the simulator's core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import normalized_cost
from repro.memsim.tiers import DEFAULT_MEMORY_SYSTEM, Tier
from repro.trace.events import AccessEpoch, InvocationTrace
from repro.vm.microvm import Backing, MicroVM

N_PAGES = 2048


@st.composite
def traces(draw):
    """Random small traces."""
    n_epochs = draw(st.integers(min_value=1, max_value=4))
    epochs = []
    for _ in range(n_epochs):
        n_touched = draw(st.integers(min_value=0, max_value=64))
        pages = draw(
            st.lists(
                st.integers(min_value=0, max_value=N_PAGES - 1),
                min_size=n_touched,
                max_size=n_touched,
                unique=True,
            )
        )
        pages = np.asarray(sorted(pages), dtype=np.int64)
        counts = np.asarray(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=10_000),
                    min_size=len(pages),
                    max_size=len(pages),
                )
            ),
            dtype=np.int64,
        )
        epochs.append(
            AccessEpoch(
                cpu_time_s=draw(
                    st.floats(min_value=1e-5, max_value=0.01)
                ),
                pages=pages,
                counts=counts,
                random_fraction=draw(st.floats(min_value=0, max_value=1)),
                store_fraction=draw(st.floats(min_value=0, max_value=1)),
            )
        )
    return InvocationTrace(n_pages=N_PAGES, epochs=tuple(epochs))


@st.composite
def placements(draw):
    """Random two-tier placements as band patterns."""
    n_bands = draw(st.integers(min_value=1, max_value=8))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=N_PAGES - 1),
                min_size=n_bands - 1,
                max_size=n_bands - 1,
                unique=True,
            )
        )
    )
    placement = np.zeros(N_PAGES, dtype=np.uint8)
    bounds = [0, *cuts, N_PAGES]
    for i, (a, b) in enumerate(zip(bounds, bounds[1:])):
        placement[a:b] = i % 2
    return placement


class TestExecutionInvariants:
    @given(trace=traces(), placement=placements())
    @settings(max_examples=80, deadline=None)
    def test_slow_never_faster_than_fast(self, trace, placement):
        all_fast = np.zeros(N_PAGES, dtype=np.uint8)
        t_mixed = MicroVM(N_PAGES, placement=placement).execute(trace).time_s
        t_fast = MicroVM(N_PAGES, placement=all_fast).execute(trace).time_s
        assert t_mixed >= t_fast - 1e-15

    @given(trace=traces(), placement=placements())
    @settings(max_examples=60, deadline=None)
    def test_accesses_conserved(self, trace, placement):
        res = MicroVM(N_PAGES, placement=placement).execute(trace)
        assert res.counters.total_accesses == trace.total_accesses

    @given(trace=traces(), placement=placements())
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_offloading(self, trace, placement):
        """Moving extra pages to the slow tier never speeds things up."""
        more_slow = placement.copy()
        more_slow[: N_PAGES // 2] = int(Tier.SLOW)
        more_slow = np.maximum(more_slow, placement)
        t_a = MicroVM(N_PAGES, placement=placement).execute(trace).time_s
        t_b = MicroVM(N_PAGES, placement=more_slow).execute(trace).time_s
        assert t_b >= t_a - 1e-15

    @given(trace=traces())
    @settings(max_examples=40, deadline=None)
    def test_additivity_of_stalls(self, trace):
        """Stall time decomposes additively over page subsets: offloading
        A∪B costs exactly offloading A plus offloading B (no faults)."""
        half = N_PAGES // 2
        a = np.zeros(N_PAGES, dtype=np.uint8)
        a[:half] = 1
        b = np.zeros(N_PAGES, dtype=np.uint8)
        b[half:] = 1
        both = np.ones(N_PAGES, dtype=np.uint8)
        base = MicroVM(N_PAGES).execute(trace).time_s
        da = MicroVM(N_PAGES, placement=a).execute(trace).time_s - base
        db = MicroVM(N_PAGES, placement=b).execute(trace).time_s - base
        dboth = MicroVM(N_PAGES, placement=both).execute(trace).time_s - base
        assert dboth == pytest.approx(da + db, rel=1e-9, abs=1e-12)

    @given(trace=traces())
    @settings(max_examples=40, deadline=None)
    def test_fault_counts_bounded_by_working_set(self, trace):
        backing = np.full(N_PAGES, int(Backing.UFFD_SSD), dtype=np.uint8)
        res = MicroVM(N_PAGES, backing=backing).execute(trace)
        assert res.counters.major_faults == trace.working_set_pages

    @given(trace=traces(), placement=placements())
    @settings(max_examples=40, deadline=None)
    def test_demand_time_equals_execution_time(self, trace, placement):
        res = MicroVM(N_PAGES, placement=placement).execute(trace)
        assert res.demand.nominal_time_s == pytest.approx(res.time_s)


class TestCostInvariants:
    @given(
        sd_a=st.floats(min_value=1.0, max_value=5.0),
        sd_b=st.floats(min_value=1.0, max_value=5.0),
        fast=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_cost_monotone_in_slowdown(self, sd_a, sd_b, fast):
        lo, hi = sorted([sd_a, sd_b])
        assert normalized_cost(lo, fast) <= normalized_cost(hi, fast) + 1e-12

    @given(fast=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_zero_slowdown_cost_bounds(self, fast):
        cost = normalized_cost(1.0, fast)
        optimal = DEFAULT_MEMORY_SYSTEM.optimal_normalized_cost
        assert optimal - 1e-12 <= cost <= 1.0 + 1e-12
