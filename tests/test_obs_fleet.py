"""Fleet aggregation (:mod:`repro.obs.fleet`) and the fleet report."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.experiments import fleet_report
from repro.obs import (
    FleetAggregator,
    MetricsRegistry,
    prometheus_text,
)

FIXTURES = Path(__file__).parent / "fixtures"


class TestHostObservations:
    def test_children_are_lazy_and_cached(self):
        agg = FleetAggregator()
        assert agg.host_ids() == []
        child = agg.host_observation(2)
        assert agg.host_observation(2) is child
        agg.host_observation(0)
        assert agg.host_ids() == [0, 2]

    def test_children_cannot_recurse(self):
        # A host's child observation must not carry an slo feed or a
        # nested aggregator — hosts aggregate into the fleet, never
        # into each other.
        child = FleetAggregator().host_observation(0)
        assert child.slo is None
        assert child.fleet is None

    def test_host_tracer_items_in_host_order(self):
        agg = FleetAggregator()
        for hid in (3, 1, 2):
            agg.host_observation(hid)
        assert [hid for hid, _ in agg.host_tracer_items()] == [1, 2, 3]


class TestFleetRegistry:
    def build(self) -> FleetAggregator:
        agg = FleetAggregator()
        for hid in (1, 0):
            reg = agg.host_observation(hid).metrics
            reg.counter("toss_requests_total", "requests").inc(
                10.0 + hid, outcome="served"
            )
            reg.gauge("toss_pool_pages", "pool").set(100.0 * (hid + 1))
            hist = reg.histogram("toss_setup_seconds", "setup")
            hist.observe(0.004 + 0.001 * hid, strategy="toss")
        return agg

    def test_host_labels_attached(self):
        text = prometheus_text(self.build().fleet_registry())
        assert 'toss_requests_total{host="0",outcome="served"} 10' in text
        assert 'toss_requests_total{host="1",outcome="served"} 11' in text
        assert 'toss_pool_pages{host="0"} 100' in text

    def test_histograms_merge_per_host(self):
        reg = self.build().fleet_registry()
        hist = reg.get("toss_setup_seconds")
        assert hist is not None
        q0 = hist.quantile(0.5, host="0", strategy="toss")
        q1 = hist.quantile(0.5, host="1", strategy="toss")
        assert q0 > 0.0 and q1 > 0.0

    def test_parent_families_kept_unlabelled(self):
        agg = self.build()
        parent = MetricsRegistry()
        parent.counter("toss_cluster_requests_total", "cluster").inc(
            21.0, outcome="served"
        )
        text = prometheus_text(agg.fleet_registry(parent=parent))
        assert 'toss_cluster_requests_total{outcome="served"} 21' in text

    def test_merge_accumulates_on_label_collision(self):
        # Two hosts observing the same histogram labelset must sum into
        # one fleet sample per host label — and a second merge of the
        # same children must not double-count (copy semantics).
        agg = FleetAggregator()
        hist = agg.host_observation(0).metrics.histogram("toss_h", "h")
        hist.observe(1.0)
        hist.observe(2.0)
        first = prometheus_text(agg.fleet_registry())
        second = prometheus_text(agg.fleet_registry())
        assert first == second
        assert 'toss_h_count{host="0"} 2' in second
        assert 'toss_h_sum{host="0"} 3' in second

    def test_rendered_text_is_deterministic(self):
        assert prometheus_text(self.build().fleet_registry()) == (
            prometheus_text(self.build().fleet_registry())
        )

    def test_empty_aggregator_renders_empty(self):
        assert prometheus_text(FleetAggregator().fleet_registry()) == ""


class TestFleetReport:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            fleet_report.run("fig42")

    def test_crash_scenario_matches_golden_fixtures(self):
        result = fleet_report.run("crash")
        assert result.alerts_jsonl == (
            FIXTURES / "fleet_report_crash_alerts.jsonl"
        ).read_text()
        assert result.fleet_prom == (
            FIXTURES / "fleet_report_crash_metrics.prom"
        ).read_text()

    def test_crash_scenario_artefacts(self):
        result = fleet_report.run("crash")
        # Host 0's outage must produce fired-and-resolved alerts.
        lines = [
            json.loads(line)
            for line in result.alerts_jsonl.splitlines()
        ]
        alerts = [rec for rec in lines if rec["kind"] == "alert"]
        assert alerts and all(a["slo"] == "availability" for a in alerts)
        assert any(a["resolved_at_s"] is not None for a in alerts)
        # Per-host Perfetto traces exist for every host that served.
        assert sorted(result.host_perfetto) == result.aggregator.host_ids()
        for text in result.host_perfetto.values():
            json.loads(text)
        # The markdown summary names the scenario and tabulates hosts.
        assert "crash" in result.summary_md
        assert "| host0 |" in result.summary_md

    def test_observation_not_leaked(self):
        from repro.obs import runtime

        fleet_report.run("steady")
        assert runtime.active() is None
