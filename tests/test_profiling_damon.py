"""Tests for the DAMON simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProfilingError
from repro.profiling.damon import DamonConfig, DamonProfiler
from repro.vm.microvm import EpochRecord


def record(n_pages, pages, counts, duration=0.05):
    return EpochRecord(
        duration_s=duration,
        pages=np.asarray(pages, dtype=np.int64),
        counts=np.asarray(counts, dtype=np.int64),
    )


def profiler(n_pages=8192, seed=7, **cfg_kwargs) -> DamonProfiler:
    return DamonProfiler(
        n_pages,
        DamonConfig(**cfg_kwargs),
        rng=np.random.default_rng(seed),
    )


class TestConfig:
    def test_paper_defaults(self):
        cfg = DamonConfig()
        assert cfg.sampling_interval_s == pytest.approx(10e-6)
        assert cfg.min_region_pages == 4  # 16 kB / 4 kB

    def test_invalid(self):
        with pytest.raises(ProfilingError):
            DamonConfig(sampling_interval_s=0)
        with pytest.raises(ProfilingError):
            DamonConfig(min_region_pages=0)
        with pytest.raises(ProfilingError):
            DamonConfig(min_nr_regions=100, max_nr_regions=10)


class TestRegionInvariants:
    def test_initial_regions_partition_space(self):
        p = profiler()
        regions = p.region_list()
        assert regions[0].start_page == 0
        assert regions[-1].end_page == p.n_pages
        for a, b in zip(regions, regions[1:]):
            assert a.end_page == b.start_page

    def test_regions_partition_after_profiling(self):
        p = profiler()
        hot = list(range(100, 400))
        for _ in range(6):
            p.profile(
                [record(8192, hot, [200] * len(hot))]
            )
        regions = p.region_list()
        assert regions[0].start_page == 0
        assert regions[-1].end_page == p.n_pages
        assert all(a.end_page == b.start_page for a, b in zip(regions, regions[1:]))
        assert p.n_regions <= DamonConfig().max_nr_regions

    def test_reset_restores_initial(self):
        p = profiler()
        p.profile([record(8192, [1], [1000])])
        p.reset()
        assert p.n_regions <= DamonConfig().min_nr_regions


class TestObservation:
    def test_hot_pages_observed(self):
        p = profiler()
        hot = list(range(0, 512))
        snap = None
        for _ in range(4):
            snap = p.profile([record(8192, hot, [500] * 512, duration=0.1)])
        values = snap.page_values()
        assert values[:512].mean() > 10 * max(values[4096:].mean(), 0.01)

    def test_untouched_regions_read_zero(self):
        p = profiler()
        snap = p.profile(
            [record(8192, [], [], duration=0.05)]
        )
        assert snap.page_values().sum() == 0
        assert snap.observed_pages == 0

    def test_sparse_pages_diluted_by_region(self):
        """A few touched pages inside a large idle region are nearly
        invisible: the region's estimate averages over its idle pages
        (Section III-C's granularity nuance)."""
        p = profiler(min_nr_regions=2, max_nr_regions=4)
        snap = p.profile([record(8192, [4000], [50], duration=0.1)])
        # The lone hot page's signal is spread over a multi-thousand-page
        # region, so per-page observation stays far below the dedicated-
        # region expectation (~50 * access_bit_scale).
        assert snap.page_values()[4000] < 1000

    def test_observation_saturates_at_samples(self):
        """nr_accesses can never exceed the number of sampling checks —
        a million-access page looks the same as a thousand-access one
        once the accessed bit is always set (observation #4's ceiling)."""
        p = profiler()
        pages = list(range(0, 8192, 2))
        counts = [10**7] * len(pages)
        snap = p.profile([record(8192, pages, counts, duration=0.01)])
        assert snap.page_values().max() <= snap.samples

    def test_higher_rate_higher_observation(self):
        pages = list(range(0, 256))
        lo = profiler(seed=1).profile(
            [record(8192, pages, [50] * 256, duration=0.1)]
        )
        hi = profiler(seed=1).profile(
            [record(8192, pages, [5000] * 256, duration=0.1)]
        )
        assert hi.page_values()[:256].mean() > lo.page_values()[:256].mean()

    def test_samples_counted(self):
        p = profiler()
        snap = p.profile([record(8192, [0], [10], duration=0.01)])
        assert snap.samples == pytest.approx(0.01 / 10e-6, rel=0.01)

    def test_empty_invocation_rejected(self):
        with pytest.raises(ProfilingError):
            profiler().profile([])

    def test_adaptation_resolves_boundary(self):
        """After a few invocations the hot/cold boundary is region-aligned
        to within the minimum region size."""
        p = profiler(n_pages=4096)
        hot = list(range(0, 1024))
        snap = None
        for _ in range(10):
            snap = p.profile(
                [record(4096, hot, [2000] * 1024, duration=0.1)] * 3
            )
        values = snap.page_values()
        hot_mean = values[:1024].mean()
        cold_mean = values[2048:].mean()
        assert hot_mean > 50 * max(cold_mean, 0.01)


class TestDeterminism:
    def test_same_seed_same_output(self):
        a = profiler(seed=5).profile([record(8192, [0, 1], [100, 100])])
        b = profiler(seed=5).profile([record(8192, [0, 1], [100, 100])])
        np.testing.assert_array_equal(a.page_values(), b.page_values())
