"""Overload-resilience layer: admission, deadlines, breakers, the ladder.

Covers the policy objects in :mod:`repro.platform.overload` and their
integration into :class:`~repro.platform.server.ServerlessPlatform`:
batch traffic is shed with typed decisions while latency traffic always
finds a path (fallback if necessary), deadlines abort restores that
would blow them, breakers cycle closed -> open -> half-open in simulated
time, the health ladder climbs and descends one observable step at a
time — and the all-permissive configuration is byte-identical to no
overload policy at all.
"""

from __future__ import annotations

import pytest

from repro.core.telemetry import EventKind, TelemetryLog
from repro.core.toss import Phase, TossConfig, TossController
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    FaultInjected,
    SchedulerError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    StorageFaultSpec,
    TierFaultSpec,
)
from repro.platform import HostCapacity
from repro.platform.overload import (
    BreakerState,
    CircuitBreaker,
    DegradationLadder,
    HealthState,
    OverloadConfig,
    OverloadPolicy,
    RequestClass,
    ShedReason,
)
from repro.platform.server import ServerlessPlatform

SMALL_TOSS = TossConfig(convergence_window=3, min_profiling_invocations=3)


def make_platform(overload=None, *, n_cores=2, faults=None, **kwargs):
    telemetry = TelemetryLog()
    platform = ServerlessPlatform(
        n_cores=n_cores,
        toss_cfg=SMALL_TOSS,
        faults=faults,
        telemetry=telemetry,
        overload=overload,
        **kwargs,
    )
    return platform, telemetry


class TestOverloadConfig:
    def test_default_is_permissive(self):
        assert OverloadConfig().is_permissive

    def test_any_knob_breaks_permissiveness(self):
        assert not OverloadConfig(max_queue_depth=4).is_permissive
        assert not OverloadConfig(slo_factor=3.0).is_permissive
        assert not OverloadConfig(pressured_delay_s=0.1).is_permissive

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"max_queue_delay_s": -1.0},
            {"max_function_depth": 0},
            {"slo_factor": 0.0},
            {"breaker_failures": 0},
            {"breaker_cooldown_s": 0.0},
            {"pressured_delay_s": -0.5},
            {"delay_alpha": 0.0},
            {"exit_factor": 1.0},
            {"fault_window": 0},
            {"degraded_fault_rate": 1.5},
            {"pressured_capacity_fraction": 0.0},
            {"keepalive_pressure_fraction": 1.5},
            # Thresholds must be ordered: pressured <= degraded <= shedding.
            {"pressured_delay_s": 0.5, "degraded_delay_s": 0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            OverloadConfig(**kwargs)


class TestRequestValidation:
    """Satellite: serve() validates request tuples up front, by name."""

    def test_negative_arrival_rejected_up_front(self, tiny_function):
        platform, _ = make_platform()
        platform.deploy(tiny_function)
        with pytest.raises(SchedulerError, match=r"\(-1\.0, 'tiny', 0\)"):
            platform.serve([(0.0, "tiny", 1), (-1.0, "tiny", 0)])
        # Nothing was partially served.
        assert platform.log == []

    def test_out_of_range_input_index_rejected(self, tiny_function):
        platform, _ = make_platform()
        platform.deploy(tiny_function)
        with pytest.raises(SchedulerError, match=r"input_index outside 0\.\.3"):
            platform.serve([(0.0, "tiny", 4)])
        with pytest.raises(SchedulerError, match="input_index"):
            platform.serve([(0.0, "tiny", -1)])
        assert platform.log == []

    def test_malformed_tuple_rejected(self, tiny_function):
        platform, _ = make_platform()
        platform.deploy(tiny_function)
        with pytest.raises(SchedulerError, match="malformed request tuple"):
            platform.serve([(0.0, "tiny")])

    def test_unknown_request_class_rejected(self, tiny_function):
        platform, _ = make_platform()
        platform.deploy(tiny_function)
        with pytest.raises(SchedulerError, match="unknown request class"):
            platform.serve([(0.0, "tiny", 0, "bulk")])

    def test_undeployed_function_still_rejected(self, tiny_function):
        platform, _ = make_platform()
        platform.deploy(tiny_function)
        with pytest.raises(SchedulerError, match="not deployed"):
            platform.serve([(0.0, "tiny", 0), (0.1, "ghost", 0)])

    def test_string_class_accepted(self, tiny_function):
        platform, _ = make_platform()
        platform.deploy(tiny_function)
        log = platform.serve([(0.0, "tiny", 0, "batch")])
        assert log[0].request_class == "batch"


class TestCircuitBreakerUnit:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(3, 1.0)
        assert breaker.record_outcome(False, 0.0) == []
        assert breaker.record_outcome(False, 0.1) == []
        trans = breaker.record_outcome(False, 0.2)
        assert trans == [
            (BreakerState.CLOSED, BreakerState.OPEN, "failure-threshold")
        ]
        assert breaker.trips == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(2, 1.0)
        breaker.record_outcome(False, 0.0)
        breaker.record_outcome(True, 0.1)
        breaker.record_outcome(False, 0.2)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_cycle(self):
        breaker = CircuitBreaker(1, 1.0)
        breaker.record_outcome(False, 5.0)
        assert breaker.state is BreakerState.OPEN
        # Before the cool-down elapses, nothing moves.
        assert breaker.poll(5.5) == []
        trans = breaker.poll(6.0)
        assert trans == [
            (BreakerState.OPEN, BreakerState.HALF_OPEN, "cooldown-elapsed")
        ]
        # A probe's outcome is deferred to its finish timestamp: the
        # breaker stays half-open (probe in flight) until polled past it.
        assert breaker.record_outcome(False, 6.1) == []
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.poll(6.05) == []
        # A failing probe re-opens for a fresh cool-down ...
        trans = breaker.poll(6.1)
        assert trans == [
            (BreakerState.HALF_OPEN, BreakerState.OPEN, "probe-failed")
        ]
        assert breaker.poll(7.0) == []
        breaker.poll(7.1)
        # ... and a succeeding probe closes.
        assert breaker.record_outcome(True, 7.2) == []
        trans = breaker.poll(7.2)
        assert trans == [
            (BreakerState.HALF_OPEN, BreakerState.CLOSED, "probe-succeeded")
        ]

    def test_half_open_single_probe_slot(self):
        breaker = CircuitBreaker(1, 1.0)
        breaker.record_outcome(False, 0.0)
        breaker.poll(1.0)
        assert breaker.state is BreakerState.HALF_OPEN
        # Exactly one caller claims the slot; the rest are refused.
        assert breaker.try_acquire_probe()
        assert not breaker.try_acquire_probe()
        assert not breaker.try_acquire_probe()
        assert breaker.probes_refused == 2
        # The slot stays held while the probe's outcome is pending ...
        breaker.record_outcome(False, 1.4)
        assert not breaker.try_acquire_probe()
        assert breaker.probes_refused == 3
        # ... and a fresh half-open window gets a fresh slot.
        breaker.poll(1.4)
        assert breaker.state is BreakerState.OPEN
        breaker.poll(2.4)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.try_acquire_probe()

    def test_release_probe_returns_slot(self):
        breaker = CircuitBreaker(1, 1.0)
        breaker.record_outcome(False, 0.0)
        breaker.poll(1.0)
        assert breaker.try_acquire_probe()
        # The probe never ran (e.g. capacity-shed): the slot comes back.
        breaker.release_probe()
        assert breaker.try_acquire_probe()

    def test_closed_breaker_has_no_probe_slot(self):
        breaker = CircuitBreaker(1, 1.0)
        assert not breaker.try_acquire_probe()
        assert breaker.probes_refused == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(0, 1.0)
        with pytest.raises(ConfigError):
            CircuitBreaker(1, 0.0)


class TestDegradationLadderUnit:
    def cfg(self, **kwargs):
        defaults = dict(
            pressured_delay_s=0.01,
            degraded_delay_s=0.05,
            shedding_delay_s=0.10,
            delay_alpha=1.0,
            exit_factor=0.5,
        )
        defaults.update(kwargs)
        return OverloadConfig(**defaults)

    def test_disabled_ladder_never_moves(self):
        ladder = DegradationLadder(OverloadConfig())
        assert not ladder.enabled
        assert ladder.update(0.0, queue_delay_s=100.0) == []
        assert ladder.state is HealthState.HEALTHY

    def test_climbs_one_step_per_observation(self):
        ladder = DegradationLadder(self.cfg())
        # Delay far above every threshold: still only one rung at a time.
        assert ladder.update(0.0, queue_delay_s=1.0) == [
            (0.0, HealthState.HEALTHY, HealthState.PRESSURED)
        ]
        assert ladder.update(1.0, queue_delay_s=1.0) == [
            (1.0, HealthState.PRESSURED, HealthState.DEGRADED)
        ]
        assert ladder.update(2.0, queue_delay_s=1.0) == [
            (2.0, HealthState.DEGRADED, HealthState.SHEDDING)
        ]
        assert ladder.update(3.0, queue_delay_s=1.0) == []

    def test_hysteresis_on_descent(self):
        ladder = DegradationLadder(self.cfg(delay_alpha=1.0))
        ladder.update(0.0, queue_delay_s=0.02)
        assert ladder.state is HealthState.PRESSURED
        # Dropping just below the entry threshold is not enough ...
        assert ladder.update(1.0, queue_delay_s=0.008) == []
        # ... it must fall below exit_factor * threshold.
        assert ladder.update(2.0, queue_delay_s=0.001) == [
            (2.0, HealthState.PRESSURED, HealthState.HEALTHY)
        ]

    def test_fault_rate_forces_degraded(self):
        ladder = DegradationLadder(
            OverloadConfig(degraded_fault_rate=0.5, fault_window=4)
        )
        for _ in range(4):
            ladder.note_outcome(True)
        ladder.update(0.0, queue_delay_s=0.0)
        ladder.update(1.0, queue_delay_s=0.0)
        assert ladder.state is HealthState.DEGRADED
        assert ladder.force_fallback
        # A stream of clean outcomes drains the window and recovers.
        for _ in range(4):
            ladder.note_outcome(False)
        ladder.update(2.0, queue_delay_s=0.0)
        ladder.update(3.0, queue_delay_s=0.0)
        assert ladder.state is HealthState.HEALTHY

    def test_capacity_pressure_forces_pressured(self):
        ladder = DegradationLadder(
            OverloadConfig(pressured_capacity_fraction=0.8)
        )
        ladder.update(0.0, queue_delay_s=0.0, capacity_pressure=0.9)
        assert ladder.state is HealthState.PRESSURED
        assert ladder.disable_prewarm
        ladder.update(1.0, queue_delay_s=0.0, capacity_pressure=0.1)
        assert ladder.state is HealthState.HEALTHY


class TestBoundedAdmission:
    def test_queue_depth_limit_sheds_batch_only(self, tiny_function):
        platform, telemetry = make_platform(
            OverloadConfig(max_queue_depth=2), n_cores=1
        )
        platform.deploy(tiny_function)
        burst = [
            (0.0, "tiny", i % 4, "batch" if i % 2 else "latency")
            for i in range(12)
        ]
        log = platform.serve(burst)
        shed = [e for e in log if e.shed]
        assert shed and all(e.request_class == "batch" for e in shed)
        assert all(e.shed_reason == ShedReason.QUEUE_DEPTH.value for e in shed)
        # Latency traffic over the limit fell back instead of queueing.
        forced = [e for e in log if e.request_class == "latency" and e.degraded]
        assert forced
        # Shed decisions reach the policy log and telemetry, symmetrically.
        assert len(platform.overload.sheds) == len(shed)
        events = telemetry.of_kind(EventKind.REQUEST_SHED)
        assert len(events) == len(shed)
        assert all(e.detail["reason"] == "queue-depth" for e in events)
        # Sheds do not count against availability, but are reported.
        assert platform.availability() == 1.0
        assert platform.total_shed() == len(shed)
        assert platform.shed_fraction() == pytest.approx(len(shed) / 12)

    def test_queue_delay_limit(self, tiny_function):
        platform, _ = make_platform(
            OverloadConfig(max_queue_delay_s=0.005), n_cores=1
        )
        platform.deploy(tiny_function)
        log = platform.serve(
            [(0.0001 * i, "tiny", 3, "batch") for i in range(10)]
        )
        shed = [e for e in log if e.shed]
        assert shed
        assert all(e.shed_reason == ShedReason.QUEUE_DELAY.value for e in shed)

    def test_function_depth_limit(self, tiny_function, memory_intensive_function):
        platform, _ = make_platform(
            OverloadConfig(max_function_depth=1), n_cores=4
        )
        platform.deploy(tiny_function)
        platform.deploy(memory_intensive_function)
        log = platform.serve(
            [(0.0, "tiny", 3, "batch") for _ in range(3)]
            + [(0.0, "intense", 0, "batch")]
        )
        shed = [e for e in log if e.shed]
        # Only the hot function is capped; the other function's request
        # is untouched even though cores were available for all.
        assert shed and all(e.function == "tiny" for e in shed)
        assert all(
            e.shed_reason == ShedReason.FUNCTION_DEPTH.value for e in shed
        )


class TestDeadlines:
    def test_deadline_recorded_and_met_when_idle(self, tiny_function):
        platform, _ = make_platform(OverloadConfig(slo_factor=50.0))
        platform.deploy(tiny_function)
        log = platform.serve([(0.5 * i, "tiny", 0) for i in range(10)])
        assert all(e.deadline_s is not None for e in log)
        assert all(e.deadline_met or e.degraded for e in log)
        assert platform.deadline_misses() == []

    def test_hopeless_batch_shed_at_admission(self, tiny_function):
        platform, _ = make_platform(
            OverloadConfig(slo_factor=1.5), n_cores=1
        )
        platform.deploy(tiny_function)
        # One core, simultaneous arrivals: the queue alone blows the
        # deadline for the tail.  Batch is shed; latency served anyway.
        log = platform.serve(
            [(0.0, "tiny", 3, "batch" if i % 2 else "latency") for i in range(8)]
        )
        shed = [e for e in log if e.shed]
        assert shed and all(e.request_class == "batch" for e in shed)
        assert all(e.shed_reason == ShedReason.DEADLINE.value for e in shed)
        assert all(not e.shed for e in log if e.request_class == "latency")

    def test_tiered_restore_aborted_when_budget_blown(self, tiny_function):
        telemetry = TelemetryLog()
        ctl = TossController(
            tiny_function, cfg=SMALL_TOSS, telemetry=telemetry
        )
        for i in range(10):
            if ctl.phase is Phase.TIERED:
                break
            ctl.invoke(i % 4)
        assert ctl.phase is Phase.TIERED
        outcome = ctl.invoke(3, setup_budget_s=0.0)
        assert outcome.aborted
        assert outcome.degraded
        assert outcome.slow_fraction == 0.0
        events = telemetry.of_kind(EventKind.DEADLINE_ABORTED)
        assert len(events) == 1
        assert events[0].detail["budget_s"] == 0.0
        # The abort cost is capped at the budget: with budget 0 the
        # setup reduces to the fallback lazy restore alone.
        assert outcome.setup_time_s > 0.0

    def test_abort_without_fallback_raises(self, tiny_function):
        ctl = TossController(tiny_function, cfg=SMALL_TOSS)
        for i in range(10):
            if ctl.phase is Phase.TIERED:
                break
            ctl.invoke(i % 4)
        ctl.single_snapshot = None
        with pytest.raises(DeadlineExceededError, match="no single-tier"):
            ctl.invoke(3, setup_budget_s=0.0)

    def test_generous_budget_changes_nothing(self, tiny_function):
        ctl = TossController(tiny_function, cfg=SMALL_TOSS)
        for i in range(10):
            if ctl.phase is Phase.TIERED:
                break
            ctl.invoke(i % 4)
        outcome = ctl.invoke(3, setup_budget_s=60.0)
        assert not outcome.aborted


class TestCircuitBreakerIntegration:
    def test_outage_trips_and_recovers_breaker(self, tiny_function):
        plan = FaultPlan(tier=TierFaultSpec(outage_windows=((2.0, 4.0),)))
        platform, telemetry = make_platform(
            OverloadConfig(breaker_failures=2, breaker_cooldown_s=1.0),
            faults=FaultInjector(plan),
        )
        platform.deploy(tiny_function)
        log = platform.serve([(0.1 * i, "tiny", 3) for i in range(80)])

        breaker = platform.overload.breakers["tiny"]
        assert breaker.trips >= 1
        assert breaker.state is BreakerState.CLOSED
        # Every state of the cycle appears in telemetry.
        seen = {
            (e.detail["from_state"], e.detail["to_state"])
            for e in telemetry.of_kind(EventKind.BREAKER_TRANSITION)
        }
        assert ("closed", "open") in seen
        assert ("open", "half-open") in seen
        assert ("half-open", "closed") in seen
        # While open, requests were served via fallback — not dropped.
        assert platform.availability() == 1.0
        assert not any(e.failed for e in log)
        assert any(e.degraded for e in log)

    def test_fail_fast_sheds_batch_while_open(self, tiny_function):
        plan = FaultPlan(tier=TierFaultSpec(outage_windows=((1.0, 3.0),)))
        platform, _ = make_platform(
            OverloadConfig(
                breaker_failures=1,
                breaker_cooldown_s=0.5,
                breaker_fail_fast=True,
            ),
            faults=FaultInjector(plan),
        )
        platform.deploy(tiny_function)
        log = platform.serve(
            [
                (0.05 * i, "tiny", 3, "batch" if i % 2 else "latency")
                for i in range(80)
            ]
        )
        shed = [e for e in log if e.shed]
        assert shed
        assert all(e.shed_reason == ShedReason.BREAKER_OPEN.value for e in shed)
        assert all(e.request_class == "batch" for e in shed)
        # Latency traffic kept being served through the outage.
        assert all(
            not e.shed and not e.failed
            for e in log
            if e.request_class == "latency"
        )

    def test_half_open_admits_exactly_one_probe(self, tiny_function):
        """Concurrent half-open arrivals must not stampede the probe.

        Regression for the half-open stampede: the probe's outcome used
        to be applied to the breaker state eagerly at admission time, so
        requests arriving *while the probe was still running* rode a
        state from their future and all hit the recovering tiered path
        at once.  Exactly one of the concurrent arrivals may probe; the
        rest take the fallback path until the probe's finish has been
        polled past.
        """
        plan = FaultPlan(tier=TierFaultSpec(outage_windows=((2.0, 4.5),)))
        platform, telemetry = make_platform(
            OverloadConfig(breaker_failures=2, breaker_cooldown_s=3.0),
            n_cores=4,
            faults=FaultInjector(plan),
        )
        platform.deploy(tiny_function)
        requests = [(0.1 * i, "tiny", 3) for i in range(15)]
        # Two tiered failures inside the outage trip the breaker; the
        # cool-down ends after the outage does, so the next half-open
        # probe will succeed.
        requests += [(2.1, "tiny", 3), (2.2, "tiny", 3)]
        # Four requests arrive at the same instant while half-open: the
        # probe's outcome is not known until it finishes, so only one of
        # them may attempt the tiered path.
        requests += [(5.6, "tiny", 3)] * 4
        requests += [(7.5, "tiny", 3)]
        log = platform.serve(requests)

        breaker = platform.overload.breakers["tiny"]
        assert breaker.trips == 1
        wave = [e for e in log if e.arrival_s == 5.6]
        assert len(wave) == 4
        probes = [e for e in wave if not e.degraded]
        assert len(probes) == 1
        assert breaker.probes_refused == 3
        # The successful probe closed the breaker once polled past; the
        # late request rode the tiered path again.
        assert breaker.state is BreakerState.CLOSED
        late = [e for e in log if e.arrival_s == 7.5]
        assert late and not late[0].degraded
        seen = {
            (e.detail["from_state"], e.detail["to_state"])
            for e in telemetry.of_kind(EventKind.BREAKER_TRANSITION)
        }
        assert ("half-open", "closed") in seen
        assert platform.availability() == 1.0


class TestHostCapacityAdmission:
    """Satellite: capacity rejections are shed decisions, not errors."""

    def test_full_host_sheds_instead_of_raising(self, tiny_function):
        # Room for exactly one 128 MB guest: concurrent arrivals collide.
        platform, telemetry = make_platform(
            None, n_cores=2, capacity=HostCapacity(150.0, 1024.0)
        )
        platform.deploy(tiny_function)
        log = platform.serve([(0.0, "tiny", 0, "batch"), (0.0, "tiny", 1, "batch")])
        assert [e.shed for e in log] == [False, True]
        assert log[1].shed_reason == ShedReason.CAPACITY.value
        assert telemetry.of_kind(EventKind.REQUEST_SHED)
        # Works without an overload policy: capacity stands alone.
        assert platform.overload is None

    def test_leases_release_at_finish_times(self, tiny_function):
        platform, _ = make_platform(
            None, n_cores=2, capacity=HostCapacity(150.0, 1024.0)
        )
        platform.deploy(tiny_function)
        # Spaced arrivals: each VM's memory is released before the next
        # request arrives, so nothing is shed.
        log = platform.serve([(2.0 * i, "tiny", 0) for i in range(6)])
        assert not any(e.shed for e in log)
        assert platform.capacity.resident_count <= 1

    def test_capacity_feeds_ladder_pressure(self, tiny_function):
        platform, _ = make_platform(
            OverloadConfig(pressured_capacity_fraction=0.5),
            n_cores=2,
            capacity=HostCapacity(200.0, 1024.0),
        )
        platform.deploy(tiny_function)
        platform.serve([(0.001 * i, "tiny", 0) for i in range(8)])
        # The host sat above 50 % fast-tier pressure while serving, so
        # the ladder left HEALTHY at some point.
        assert platform.overload.ladder.transitions


class TestFailedRequestAccounting:
    """Satellite: failed entries record the core's true state."""

    def test_failed_entry_records_free_at_and_queue_delay(
        self, tiny_function, monkeypatch
    ):
        platform, telemetry = make_platform(None, n_cores=1)
        platform.deploy(tiny_function)
        platform.serve([(0.0, "tiny", 0)])
        busy_until = platform.log[0].finish_s
        assert busy_until > 0.0

        def explode(self, dep, input_index):
            raise FaultInjected("injected for the test")

        monkeypatch.setattr(ServerlessPlatform, "_invoke", explode)
        log = platform.serve([(0.0, "tiny", 1)])
        assert log[0].failed
        # The failed attempt consumed no simulated time.
        assert log[0].finish_s == log[0].start_s
        events = [
            e
            for e in telemetry.of_kind(EventKind.FALLBACK_RESTORE)
            if e.detail.get("unserved")
        ]
        assert len(events) == 1
        # The entry's telemetry carries the core's true free time (the
        # fresh serve() batch starts from idle cores) and the wait.
        assert events[0].detail["free_at_s"] == 0.0
        assert events[0].detail["queue_delay_s"] == pytest.approx(
            log[0].start_s - log[0].arrival_s
        )


class TestPermissiveIdentity:
    """Satellite: the all-permissive config is the identity."""

    def serve_stream(self, platform, tiny_function):
        platform.deploy(tiny_function)
        return platform.serve(
            [(0.01 * i, "tiny", i % 4) for i in range(50)]
        )

    def test_logs_byte_identical_without_faults(self, tiny_function):
        plain, _ = make_platform(None)
        guarded, _ = make_platform(OverloadConfig())
        self.serve_stream(plain, tiny_function)
        self.serve_stream(guarded, tiny_function)
        assert plain.log == guarded.log
        assert plain.total_billed() == guarded.total_billed()
        assert plain.availability() == guarded.availability()
        assert guarded.total_shed() == 0

    def test_logs_byte_identical_under_chaos(self, tiny_function):
        plan = FaultPlan(
            ssd=StorageFaultSpec(read_error_rate=1e-3),
            tier=TierFaultSpec(outage_windows=((0.1, 0.2),)),
        )
        plain, _ = make_platform(None, faults=FaultInjector(plan))
        guarded, _ = make_platform(
            OverloadConfig(), faults=FaultInjector(plan)
        )
        self.serve_stream(plain, tiny_function)
        self.serve_stream(guarded, tiny_function)
        assert plain.log == guarded.log

    def test_policy_wrapping_is_equivalent(self, tiny_function):
        cfg = OverloadConfig(max_queue_depth=3)
        via_config, _ = make_platform(cfg)
        via_policy, _ = make_platform(OverloadPolicy(cfg))
        self.serve_stream(via_config, tiny_function)
        self.serve_stream(via_policy, tiny_function)
        assert via_config.log == via_policy.log


class TestDegradationScenario:
    """The documented chaos-plus-burst acceptance scenario.

    A steady batch stream shares the platform with a latency-traffic
    burst under an SSD read-error storm.  The acceptance bar (mirrored by
    ``docs/modeling.md`` and the CI smoke benchmark): every ladder
    transition up and back down appears in telemetry, at most 20 % of
    batch traffic is shed, and 100 % of latency-class requests are served
    within their deadline or via the fallback path.
    """

    def run_scenario(self, tiny_function):
        cfg = OverloadConfig(
            slo_factor=20.0,
            breaker_failures=3,
            breaker_cooldown_s=1.0,
            pressured_delay_s=0.010,
            degraded_delay_s=0.040,
            shedding_delay_s=0.120,
            delay_alpha=0.3,
        )
        plan = FaultPlan(ssd=StorageFaultSpec(read_error_rate=1e-3))
        platform, telemetry = make_platform(
            cfg, faults=FaultInjector(plan)
        )
        platform.deploy(tiny_function)
        warmup = [(0.1 * i, "tiny", i % 4) for i in range(12)]
        background = [(0.5 * i, "tiny", 1, "batch") for i in range(24)]
        burst = [(2.0 + 0.001 * i, "tiny", 0) for i in range(60)]
        recovery = [(12.0 + 0.5 * i, "tiny", 0) for i in range(8)]
        platform.serve(warmup + background + burst + recovery)
        return platform, telemetry

    def test_full_ladder_cycle_in_telemetry(self, tiny_function):
        platform, telemetry = self.run_scenario(tiny_function)
        steps = [
            (e.detail["from_state"], e.detail["to_state"])
            for e in telemetry.of_kind(EventKind.HEALTH_TRANSITION)
        ]
        assert ("HEALTHY", "PRESSURED") in steps
        assert ("PRESSURED", "DEGRADED") in steps
        assert ("DEGRADED", "SHEDDING") in steps
        assert ("SHEDDING", "DEGRADED") in steps
        assert ("DEGRADED", "PRESSURED") in steps
        assert ("PRESSURED", "HEALTHY") in steps
        assert platform.health_state is HealthState.HEALTHY
        # Telemetry and the ladder's own record agree step for step.
        assert len(steps) == len(platform.overload.ladder.transitions)

    def test_batch_shed_bounded_and_latency_protected(self, tiny_function):
        platform, _ = self.run_scenario(tiny_function)
        assert 0.0 < platform.batch_shed_fraction() <= 0.20
        latency = [
            e for e in platform.log if e.request_class == "latency"
        ]
        assert latency
        assert all(not e.shed and not e.failed for e in latency)
        # Within deadline, or explicitly served via the fallback path.
        assert all(e.deadline_met or e.degraded for e in latency)
        assert platform.availability() == 1.0

    def test_pressure_disables_prewarm_and_shrinks_keepalive(
        self, tiny_function
    ):
        from repro.platform import KeepAliveCache, PrewarmPolicy

        cfg = OverloadConfig(
            pressured_delay_s=0.010,
            degraded_delay_s=0.040,
            shedding_delay_s=0.120,
            delay_alpha=0.3,
        )
        keepalive = KeepAliveCache(1024.0)
        prewarm = PrewarmPolicy()
        platform, _ = make_platform(
            cfg, n_cores=1, keepalive=keepalive, prewarm=prewarm
        )
        platform.deploy(tiny_function)
        warmup = [(0.1 * i, "tiny", 0) for i in range(12)]
        burst = [(2.0 + 0.001 * i, "tiny", 3) for i in range(40)]
        platform.serve(warmup + burst)
        # The burst pushed the platform past DEGRADED: pre-warming was
        # switched off and the keep-alive cache fully evicted.
        assert platform.overload.ladder.transitions
        assert not prewarm.enabled or platform.health_state is (
            HealthState.HEALTHY
        )
        assert keepalive.evictions >= 1
