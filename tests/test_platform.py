"""Tests for the scheduler, arrival processes and the platform."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DramBaseline, ReapSystem
from repro.core.toss import Phase, TossConfig
from repro.errors import SchedulerError
from repro.platform import (
    Scheduler,
    ServerlessPlatform,
    bursty_arrivals,
    fixed_arrivals,
    poisson_arrivals,
)


class TestScheduler:
    def test_single_invocation_matches_uncontended(self, tiny_function):
        sched = Scheduler()
        dram = DramBaseline(tiny_function)
        result = sched.run_concurrent(dram, 3, 1)
        solo = dram.invoke(3, 0).exec_time_s
        assert result.mean_exec_s == pytest.approx(solo, rel=0.02)

    def test_dram_scales_flat(self, tiny_function):
        sched = Scheduler()
        dram = DramBaseline(tiny_function)
        t1 = sched.run_concurrent(dram, 3, 1).mean_exec_s
        t20 = sched.run_concurrent(dram, 3, 20).mean_exec_s
        assert t20 == pytest.approx(t1, rel=0.15)

    def test_reap_worst_degrades_under_load(self, tiny_function):
        sched = Scheduler()
        reap = ReapSystem(tiny_function, snapshot_input=0)
        t1 = sched.run_concurrent(reap, 3, 1).mean_exec_s
        t20 = sched.run_concurrent(reap, 3, 20).mean_exec_s
        assert t20 > 1.5 * t1
        assert sched.run_concurrent(reap, 3, 20).saturated_resource in (
            "uffd",
            "ssd",
        )

    def test_oversubscription_rejected(self, tiny_function):
        sched = Scheduler(n_cores=4)
        dram = DramBaseline(tiny_function)
        with pytest.raises(SchedulerError):
            sched.run_concurrent(dram, 3, 5)
        with pytest.raises(SchedulerError):
            sched.run_concurrent(dram, 3, 0)

    def test_result_shape(self, tiny_function):
        sched = Scheduler()
        result = sched.run_concurrent(DramBaseline(tiny_function), 2, 5)
        assert len(result.exec_times_s) == 5
        assert len(result.setup_times_s) == 5
        assert result.concurrency == 5
        assert result.max_exec_s >= result.mean_exec_s

    def test_run_waves_chunks_oversubscribed_burst(self, tiny_function):
        sched = Scheduler(n_cores=4)
        dram = DramBaseline(tiny_function)
        waves = sched.run_waves(dram, 3, 10)
        assert [w.concurrency for w in waves] == [4, 4, 2]
        assert sum(len(w.exec_times_s) for w in waves) == 10
        # The tail wave runs less contended than a full wave.
        assert waves[-1].mean_exec_s <= waves[0].mean_exec_s * 1.05

    def test_run_waves_single_wave_matches_run_concurrent(self, tiny_function):
        sched = Scheduler(n_cores=8)
        dram = DramBaseline(tiny_function)
        waves = sched.run_waves(dram, 2, 5, seed_base=7)
        direct = sched.run_concurrent(dram, 2, 5, seed_base=7)
        assert waves == [direct]

    def test_run_waves_rejects_empty_burst(self, tiny_function):
        sched = Scheduler(n_cores=4)
        with pytest.raises(SchedulerError):
            sched.run_waves(DramBaseline(tiny_function), 3, 0)


class TestArrivals:
    def test_poisson_rate(self, rng):
        times = poisson_arrivals(100.0, 10.0, rng)
        assert times.size == pytest.approx(1000, rel=0.2)
        assert np.all(np.diff(times) >= 0)
        assert times.max() < 10.0

    def test_fixed_interval(self):
        times = fixed_arrivals(0.5, 2.0)
        np.testing.assert_allclose(times, [0.0, 0.5, 1.0, 1.5])

    def test_bursty_shape(self, rng):
        times = bursty_arrivals(5, 1.0, 3.0, rng)
        assert times.size == 15
        assert np.all(np.diff(times) >= 0)

    def test_invalid_params(self, rng):
        with pytest.raises(SchedulerError):
            poisson_arrivals(0.0, 1.0, rng)
        with pytest.raises(SchedulerError):
            fixed_arrivals(-1.0, 1.0)
        with pytest.raises(SchedulerError):
            bursty_arrivals(0, 1.0, 1.0, rng)


class TestServerlessPlatform:
    def platform(self) -> ServerlessPlatform:
        return ServerlessPlatform(
            n_cores=4,
            toss_cfg=TossConfig(
                convergence_window=3, min_profiling_invocations=3
            ),
        )

    def test_deploy_idempotent(self, tiny_function):
        p = self.platform()
        a = p.deploy(tiny_function)
        b = p.deploy(tiny_function)
        assert a is b

    def test_undeployed_function_rejected(self):
        p = self.platform()
        with pytest.raises(SchedulerError):
            p.serve([(0.0, "ghost", 0)])

    def test_serving_advances_lifecycle(self, tiny_function):
        p = self.platform()
        p.deploy(tiny_function)
        requests = [(0.05 * i, "tiny", 3) for i in range(40)]
        log = p.serve(requests)
        assert len(log) == 40
        phases = [e.phase for e in log]
        assert phases[0] is Phase.INITIAL
        assert Phase.TIERED in phases

    def test_queueing_under_core_pressure(self, tiny_function):
        p = ServerlessPlatform(
            n_cores=1,
            toss_cfg=TossConfig(convergence_window=3),
        )
        p.deploy(tiny_function)
        log = p.serve([(0.0, "tiny", 3), (0.0, "tiny", 3)])
        assert log[1].queue_delay_s > 0
        assert log[1].start_s >= log[0].finish_s

    def test_tiering_saves_money(self, tiny_function):
        """End to end: after convergence the tiered bill is below the
        DRAM-only bill (observation #5)."""
        p = self.platform()
        p.deploy(tiny_function)
        p.serve([(0.1 * i, "tiny", 3) for i in range(50)])
        assert p.total_billed() < p.total_dram_billed()
        assert 0.0 < p.savings_fraction() < 0.6

    def test_arrival_distribution_insensitive(self, tiny_function, rng):
        """TOSS converges regardless of the request distribution
        (Section IV-A)."""
        for times in (
            fixed_arrivals(0.05, 2.0),
            poisson_arrivals(20.0, 2.0, rng),
        ):
            p = self.platform()
            p.deploy(tiny_function)
            log = p.serve([(float(t), "tiny", 3) for t in times])
            assert Phase.TIERED in [e.phase for e in log]
