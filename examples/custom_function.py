#!/usr/bin/env python3
"""Bring your own function: model a workload and tier it.

Shows how a downstream user describes a new serverless function — guest
memory, input ladder, access-histogram shape — and runs it through the
whole pipeline, including a what-if across memory technologies
(DRAM+PMEM, DDR5+CXL, GPU HBM+DRAM, DRAM+NVMe).

Run:  python examples/custom_function.py
"""

from repro.baselines import TossSystem
from repro.functions.base import FunctionModel, InputSpec
from repro.memsim.presets import ALL_PRESETS
from repro.report import Table
from repro.trace.synth import Band

# A video-thumbnail service: a hot codec/runtime head, a frame buffer
# that is written once (store-heavy), and a long cold tail of libraries.
THUMBNAILER = FunctionModel(
    name="thumbnailer",
    description="Video frame extraction + thumbnail encode",
    guest_mb=512,
    input_type="Video",
    inputs=(
        InputSpec("480p clip", t_dram_s=0.08, stall_share=0.020,
                  ws_fraction=0.12, variability=0.06),
        InputSpec("720p clip", t_dram_s=0.20, stall_share=0.030,
                  ws_fraction=0.20, variability=0.05),
        InputSpec("1080p clip", t_dram_s=0.45, stall_share=0.040,
                  ws_fraction=0.30, variability=0.04),
        InputSpec("4k clip", t_dram_s=1.10, stall_share=0.050,
                  ws_fraction=0.45, variability=0.04),
    ),
    bands=(
        Band(0.08, 0.55),   # codec tables + runtime: small and hot
        Band(0.52, 0.35),   # frame buffers: large, streamed
        Band(0.40, 0.10),   # libraries: big cold tail
    ),
    store_fraction=0.30,
)


def main() -> None:
    print(f"== tiering a custom function: {THUMBNAILER.name} ==\n")

    system = TossSystem(THUMBNAILER, convergence_window=6)
    analysis = system.analysis
    print(f"profiled and tiered: {system.slow_fraction:.1%} on the slow tier,")
    print(f"slowdown {analysis.expected_slowdown:.3f}x, "
          f"normalized cost {analysis.cost:.3f}\n")

    table = Table(
        "Bin profile (sorted by memory-cost efficiency)",
        ["bin", "pages", "incr. slowdown", "solo cost", "offloaded"],
        precision=4,
    )
    for b in sorted(analysis.bins, key=lambda b: b.solo_cost):
        table.add_row(
            b.index, b.n_pages, b.incremental_slowdown, b.solo_cost, b.selected
        )
    print(table.render())

    what_if = Table(
        "\nWhat-if: the same function on other memory technologies",
        ["pairing", "optimal", "cost", "slowdown", "slow %"],
    )
    for name, memory in ALL_PRESETS.items():
        s = TossSystem(THUMBNAILER, convergence_window=6, memory=memory)
        a = s.analysis
        what_if.add_row(
            name,
            memory.optimal_normalized_cost,
            a.cost,
            a.expected_slowdown,
            100.0 * a.slow_fraction,
        )
    print(what_if.render())


if __name__ == "__main__":
    main()
