#!/usr/bin/env python3
"""Quickstart: tier one serverless function with TOSS.

Walks the full Figure 4 pipeline for one Table I function:

1. the first invocation runs in a DRAM-only guest and a single-tier
   snapshot is captured;
2. subsequent invocations are profiled with DAMON until the unified
   access pattern converges;
3. the profiling analysis picks a minimum-cost page placement;
4. a tiered snapshot is generated and serves all later invocations.

Run:  python examples/quickstart.py [function_name]
"""

import sys

from repro.core import Phase, TossConfig, TossController
from repro.functions import get_function, table1
from repro.memsim.tiers import DEFAULT_MEMORY_SYSTEM


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "matmul"
    function = get_function(name)
    print(f"== TOSS quickstart: {function.name} ({function.guest_mb} MB guest) ==\n")

    row = next(r for r in table1() if r.name == name)
    print(f"inputs ({row.input_type}): {', '.join(row.inputs)}\n")

    controller = TossController(
        function,
        cfg=TossConfig(convergence_window=8, min_profiling_invocations=4),
    )

    # Send a stream of invocations cycling through the inputs; TOSS walks
    # itself from initial execution through profiling into tiered serving.
    invocation = 0
    while controller.phase is not Phase.TIERED and invocation < 200:
        outcome = controller.invoke(invocation % function.n_inputs)
        invocation += 1
        if invocation <= 3 or outcome.analysis_generated:
            print(
                f"  #{invocation:<3d} phase={outcome.phase.value:<9s} "
                f"input={outcome.input_index}  "
                f"total={outcome.total_time_s * 1e3:8.2f} ms"
            )
        elif invocation == 4:
            print("  ... profiling ...")

    analysis = controller.analysis
    snapshot = controller.tiered_snapshot
    print(f"\nconverged after {invocation} invocations")
    print(f"  slow tier share : {snapshot.slow_fraction:6.1%}")
    print(f"  expected slowdown: {analysis.expected_slowdown:6.3f}x")
    print(
        f"  normalized cost : {analysis.cost:6.3f} "
        f"(DRAM-only = 1.0, optimal = "
        f"{DEFAULT_MEMORY_SYSTEM.optimal_normalized_cost})"
    )
    print(f"  memory mappings : {snapshot.layout.n_mappings}")

    print("\ntiered serving (input IV):")
    for _ in range(3):
        outcome = controller.invoke(3)
        print(
            f"  setup {outcome.setup_time_s * 1e3:6.2f} ms + "
            f"exec {outcome.exec_time_s * 1e3:9.2f} ms"
        )


if __name__ == "__main__":
    main()
