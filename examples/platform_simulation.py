#!/usr/bin/env python3
"""End-to-end platform simulation: a mixed workload on a 20-core host.

Deploys several Table I functions onto the serverless platform, drives
them with a Poisson request stream, and reports what a provider would
see: per-function lifecycle progress, latency percentiles, and the
tiered-vs-DRAM bill (Section III-D's "dynamically reduced plan").

Run:  python examples/platform_simulation.py
"""

import numpy as np

from repro.core import Phase, TossConfig
from repro.functions import get_function
from repro.platform import ServerlessPlatform, poisson_arrivals
from repro.report import Table


def main() -> None:
    rng = np.random.default_rng(7)
    platform = ServerlessPlatform(
        n_cores=20,
        toss_cfg=TossConfig(convergence_window=6, min_profiling_invocations=4),
    )
    workload = {
        "pyaes": 12.0,        # requests/s
        "json_load_dump": 6.0,
        "matmul": 1.5,
        "lr_serving": 2.0,
    }
    horizon_s = 30.0
    requests = []
    for name, rate in workload.items():
        platform.deploy(get_function(name))
        for t in poisson_arrivals(rate, horizon_s, rng):
            # Input sizes follow serverless reality: mostly small requests
            # with an occasional large one.
            input_index = int(rng.choice(4, p=[0.4, 0.3, 0.2, 0.1]))
            requests.append((float(t), name, input_index))

    print(f"serving {len(requests)} requests over {horizon_s:.0f} s ...\n")
    log = platform.serve(requests)

    table = Table(
        "Per-function lifecycle and latency",
        ["function", "requests", "tiered from", "p50 ms", "p95 ms",
         "slow tier %"],
        precision=1,
    )
    for name in workload:
        entries = [e for e in log if e.function == name]
        latencies = np.array([e.latency_s for e in entries]) * 1e3
        tiered_at = next(
            (i for i, e in enumerate(entries) if e.phase is Phase.TIERED),
            None,
        )
        dep = platform.deployments[name]
        table.add_row(
            name,
            len(entries),
            "request #%d" % tiered_at if tiered_at is not None else "(profiling)",
            float(np.percentile(latencies, 50)),
            float(np.percentile(latencies, 95)),
            100.0 * dep.controller.slow_fraction,
        )
    print(table.render())

    billed = platform.total_billed()
    dram = platform.total_dram_billed()
    print(
        f"\nbilling: tiered {billed:,.0f} vs DRAM-only {dram:,.0f} "
        f"(saves {platform.savings_fraction():.1%})"
    )
    print(
        "Profiling-phase requests still bill at DRAM rates; the longer the"
        "\nplatform runs, the closer savings get to the Figure 5 optimum."
    )


if __name__ == "__main__":
    main()
