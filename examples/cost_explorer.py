#!/usr/bin/env python3
"""Cost explorer: sweep slowdown thresholds and cost ratios.

The paper's Section V-C lets latency-critical clients bound the slowdown
while TOSS minimises cost within that bound, and Section IV-B's formula
works for any two memory technologies.  This example shows both knobs for
one function:

* the slowdown-threshold frontier (cost vs bounded slowdown);
* how the minimum-cost placement shifts as the fast/slow price ratio
  changes (e.g. DRAM+CXL instead of DRAM+Optane).

Run:  python examples/cost_explorer.py [function_name]
"""

import sys

from repro.baselines import TossSystem
from repro.experiments.ablations import ablate_cost_ratio
from repro.functions import get_function
from repro.report import Table


def threshold_frontier(name: str) -> Table:
    """Minimum cost under increasingly tight slowdown bounds."""
    table = Table(
        f"Slowdown-threshold frontier for {name}",
        ["max slowdown", "achieved slowdown", "cost", "slow tier %"],
    )
    for threshold in (None, 0.15, 0.10, 0.05, 0.02, 0.0):
        system = TossSystem(
            get_function(name),
            convergence_window=6,
            slowdown_threshold=threshold,
        )
        analysis = system.analysis
        table.add_row(
            "unbounded" if threshold is None else f"{threshold:.0%}",
            analysis.expected_slowdown,
            analysis.cost,
            100.0 * analysis.slow_fraction,
        )
    return table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "linpack"
    print(threshold_frontier(name).render())
    print()
    print(ablate_cost_ratio(name).render())
    print(
        "\nReading: a tighter slowdown bound keeps more memory in DRAM and"
        "\nraises the bill; a cheaper slow tier (higher ratio) pulls more"
        "\nmemory across despite the slowdown."
    )


if __name__ == "__main__":
    main()
