#!/usr/bin/env python3
"""Head-to-head: TOSS vs REAP vs FaaSnap vs vanilla Firecracker.

For one function, compares the four restore strategies on the axes the
paper evaluates: setup time, total invocation time across execution
inputs, and behaviour under 20-way concurrency — plus FaaSnap's
mincore-inflated working set (Section III-C).

Run:  python examples/compare_systems.py [function_name]
"""

import sys

import numpy as np

from repro.baselines import (
    DramBaseline,
    FaasnapSystem,
    ReapSystem,
    TossSystem,
    VanillaLazy,
)
from repro.functions import INPUT_LABELS, get_function
from repro.platform import Scheduler
from repro.report import Table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "lr_serving"
    function = get_function(name)
    print(f"== comparing systems on {name} ==\n")

    dram = DramBaseline(function)
    systems = {
        "vanilla": VanillaLazy(function),
        "reap (best)": ReapSystem(function, snapshot_input=3),
        "reap (worst)": ReapSystem(function, snapshot_input=0),
        "faasnap": FaasnapSystem(function, snapshot_input=3),
        "toss": TossSystem(function, convergence_window=6),
    }

    warm = {
        i: float(np.mean([dram.invoke(i, s).exec_time_s for s in range(3)]))
        for i in range(4)
    }

    table = Table(
        "Setup and normalized total invocation time (vs warm DRAM)",
        ["system", "setup ms", *(f"input {l}" for l in INPUT_LABELS)],
        precision=2,
    )
    for label, system in systems.items():
        outcomes = [system.invoke(i, 100) for i in range(4)]
        table.add_row(
            label,
            outcomes[0].setup_time_s * 1e3,
            *(o.total_time_s / warm[i] for i, o in enumerate(outcomes)),
        )
    print(table.render())

    faas = systems["faasnap"]
    print(
        f"\nfaasnap working set: {faas.ws_pages} pages "
        f"({faas.inflation:.2f}x the truly touched set — readahead inflation)"
    )

    sched = Scheduler()
    conc = Table(
        "Execution slowdown vs warm DRAM under concurrency (input IV)",
        ["system", "C=1", "C=10", "C=20"],
        precision=2,
    )
    for label, system in systems.items():
        row = [label]
        for c in (1, 10, 20):
            result = sched.run_concurrent(system, 3, c)
            row.append(result.mean_exec_s / warm[3])
        conc.add_row(*row)
    print("\n" + conc.render())


if __name__ == "__main__":
    main()
